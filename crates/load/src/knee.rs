//! Saturation-knee detection over a ramp's per-step measurements.
//!
//! The knee of an open-loop ramp is the last offered rate the system kept up
//! with. Two signals mark the step *past* the knee: achieved (goodput) RPS
//! flattening below the offered rate, and the wall-clock p99 crossing a
//! configured SLO. Either alone is gameable — a system can keep p99 low by
//! rejecting everything, or keep accepting while latency explodes — so the
//! detector checks both.

use crate::report::StepMetrics;
use serde::{Deserialize, Serialize};

/// Knee-detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationDetector {
    /// A step is saturated when `achieved < min_achieved_ratio × offered`.
    pub min_achieved_ratio: f64,
    /// Optional latency SLO: a step whose wall-clock p99 exceeds this is
    /// saturated regardless of its achieved rate.
    pub slo_p99_us: Option<u64>,
}

impl Default for SaturationDetector {
    fn default() -> Self {
        Self {
            min_achieved_ratio: 0.9,
            slo_p99_us: None,
        }
    }
}

impl SaturationDetector {
    /// Builder-style achieved/offered ratio threshold (clamped to (0, 1]).
    #[must_use]
    pub fn with_min_achieved_ratio(mut self, ratio: f64) -> Self {
        self.min_achieved_ratio = ratio.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Builder-style p99 SLO in microseconds.
    #[must_use]
    pub fn with_slo_p99_us(mut self, slo: u64) -> Self {
        self.slo_p99_us = Some(slo);
        self
    }

    /// Find the knee: the first saturated step marks it, and the knee RPS is
    /// the previous step's offered rate (0 when the very first step is
    /// already saturated). A ramp that never saturates reports its last
    /// offered rate with [`KneeReason::NotSaturated`] — the system's
    /// capacity is at least that, but the ramp did not find its edge.
    pub fn detect(&self, steps: &[StepMetrics]) -> Knee {
        for (i, step) in steps.iter().enumerate() {
            let flattened = step.achieved_rps < self.min_achieved_ratio * step.offered_rps;
            let slo_blown = self.slo_p99_us.is_some_and(|slo| step.p99_us > slo);
            if flattened || slo_blown {
                return Knee {
                    knee_rps: if i == 0 {
                        0.0
                    } else {
                        steps[i - 1].offered_rps
                    },
                    saturated_step: Some(i),
                    reason: if flattened {
                        KneeReason::AchievedFlattened
                    } else {
                        KneeReason::SloExceeded
                    },
                };
            }
        }
        Knee {
            knee_rps: steps.last().map_or(0.0, |s| s.offered_rps),
            saturated_step: None,
            reason: KneeReason::NotSaturated,
        }
    }
}

/// What tripped saturation at the knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KneeReason {
    /// Achieved RPS fell below the configured fraction of offered.
    AchievedFlattened,
    /// The step's wall-clock p99 crossed the SLO.
    SloExceeded,
    /// The ramp ended without saturating (knee is a lower bound).
    NotSaturated,
}

impl KneeReason {
    /// The reason's name as it appears in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KneeReason::AchievedFlattened => "achieved_flattened",
            KneeReason::SloExceeded => "slo_exceeded",
            KneeReason::NotSaturated => "not_saturated",
        }
    }
}

/// A detected saturation knee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Knee {
    /// The last offered rate the system kept up with (a lower bound when
    /// the ramp never saturated).
    pub knee_rps: f64,
    /// Index of the first saturated step, if the ramp found one.
    pub saturated_step: Option<usize>,
    /// Which signal tripped.
    pub reason: KneeReason,
}

impl Knee {
    /// Whether the ramp actually drove the system past its knee.
    pub fn found(&self) -> bool {
        self.saturated_step.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(index: usize, offered: f64, achieved: f64, p99_us: u64) -> StepMetrics {
        StepMetrics {
            index,
            offered_rps: offered,
            achieved_rps: achieved,
            p99_us,
            ..StepMetrics::default()
        }
    }

    #[test]
    fn knee_is_the_last_step_that_kept_up() {
        let steps = vec![
            step(0, 100.0, 99.0, 900),
            step(1, 200.0, 198.0, 1_100),
            step(2, 300.0, 296.0, 1_800),
            step(3, 400.0, 310.0, 9_000), // achieved flattens here
            step(4, 500.0, 312.0, 22_000),
        ];
        let knee = SaturationDetector::default().detect(&steps);
        assert!(knee.found());
        assert_eq!(knee.saturated_step, Some(3));
        assert_eq!(knee.knee_rps, 300.0);
        assert_eq!(knee.reason, KneeReason::AchievedFlattened);
    }

    #[test]
    fn slo_crossing_marks_the_knee_even_at_full_goodput() {
        let steps = vec![
            step(0, 100.0, 100.0, 500),
            step(1, 200.0, 200.0, 800),
            step(2, 300.0, 300.0, 5_000), // keeps up, but past the SLO
        ];
        let detector = SaturationDetector::default().with_slo_p99_us(2_000);
        let knee = detector.detect(&steps);
        assert_eq!(knee.saturated_step, Some(2));
        assert_eq!(knee.knee_rps, 200.0);
        assert_eq!(knee.reason, KneeReason::SloExceeded);
        // Without the SLO the same curve never saturates.
        let lax = SaturationDetector::default().detect(&steps);
        assert!(!lax.found());
        assert_eq!(lax.reason, KneeReason::NotSaturated);
        assert_eq!(lax.knee_rps, 300.0);
    }

    #[test]
    fn immediate_saturation_reports_a_zero_knee() {
        let steps = vec![step(0, 1_000.0, 200.0, 50_000)];
        let knee = SaturationDetector::default().detect(&steps);
        assert_eq!(knee.knee_rps, 0.0);
        assert_eq!(knee.saturated_step, Some(0));
    }

    #[test]
    fn empty_ramp_is_not_saturated() {
        let knee = SaturationDetector::default().detect(&[]);
        assert!(!knee.found());
        assert_eq!(knee.knee_rps, 0.0);
    }
}
