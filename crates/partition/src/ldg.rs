//! Linear Deterministic Greedy (LDG) streaming partitioning.
//!
//! LDG (Stanton & Kliot, KDD 2012) is the heuristic LOOM builds on (paper
//! §4.1): a new vertex `v` goes to the partition `S_i` maximising
//!
//! ```text
//! |N(v) ∩ V_i| · (1 − |V_i| / C)
//! ```
//!
//! i.e. the partition holding most of `v`'s already-placed neighbours,
//! discounted by how full that partition already is. Ties are broken towards
//! the emptier partition, and a vertex with no placed neighbours goes to the
//! least-loaded partition.
//!
//! ## Streaming model
//!
//! In a [`loom_graph::GraphStream`] a vertex arrives *before* the edges
//! linking it to previously streamed vertices. The partitioner therefore
//! buffers exactly one pending vertex: the decision for vertex `v` is made
//! when the next vertex arrives (by which point all of `v`'s back-edges have
//! been seen) or when the stream ends. This gives LDG exactly the
//! neighbourhood information the original formulation assumes, with O(1)
//! buffered state.

use crate::error::Result;
use crate::partition::{PartitionId, Partitioning};
use crate::traits::{Partitioner, PartitionerStats};
use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, StreamElement, VertexId};
use serde::{Deserialize, Serialize};

/// Configuration for [`LdgPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdgConfig {
    /// Number of partitions.
    pub k: u32,
    /// Expected number of vertices in the stream (used to derive the
    /// capacity `C = slack · n / k`).
    pub expected_vertices: usize,
    /// Multiplicative balance slack (≥ 1.0).
    pub slack: f64,
}

impl LdgConfig {
    /// Convenience constructor with the customary 10% slack.
    pub fn new(k: u32, expected_vertices: usize) -> Self {
        Self {
            k,
            expected_vertices,
            slack: 1.1,
        }
    }
}

/// The LDG streaming partitioner.
#[derive(Debug, Clone)]
pub struct LdgPartitioner {
    partitioning: Partitioning,
    /// The vertex whose placement decision is still pending, with the
    /// neighbours (already-assigned vertices) seen for it so far.
    pending: Option<PendingVertex>,
    /// Recycled neighbour buffer from the last flushed pending vertex, so
    /// steady-state ingestion allocates nothing per vertex.
    spare_neighbours: Vec<VertexId>,
    stats: PartitionerStats,
}

#[derive(Debug, Clone)]
struct PendingVertex {
    id: VertexId,
    #[allow(dead_code)]
    label: Label,
    assigned_neighbours: Vec<VertexId>,
}

impl LdgPartitioner {
    /// Create an LDG partitioner from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid `k` / slack configurations.
    pub fn new(config: LdgConfig) -> Result<Self> {
        Ok(Self {
            partitioning: Partitioning::with_slack(
                config.k,
                config.expected_vertices,
                config.slack,
            )?,
            pending: None,
            spare_neighbours: Vec::new(),
            stats: PartitionerStats::default(),
        })
    }

    /// Read-only access to the partitioning built so far (excluding the
    /// pending vertex).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Compute the LDG score of placing a vertex with the given placed
    /// neighbours into partition `p`.
    fn score(partitioning: &Partitioning, neighbours: &[VertexId], p: PartitionId) -> f64 {
        let in_p = neighbours
            .iter()
            .filter(|&&n| partitioning.partition_of(n) == Some(p))
            .count() as f64;
        in_p * partitioning.capacity_penalty(p)
    }

    /// Pick the LDG-best partition for a vertex with the given placed
    /// neighbours. Exposed for reuse by the workload-aware extension in
    /// `loom-core`, which scores whole motif clusters the same way.
    pub fn choose_partition(partitioning: &Partitioning, neighbours: &[VertexId]) -> PartitionId {
        let mut best = partitioning.least_loaded();
        let mut best_score = 0.0f64;
        for p in partitioning.partitions() {
            let score = Self::score(partitioning, neighbours, p);
            let better = score > best_score + 1e-12
                || ((score - best_score).abs() <= 1e-12
                    && partitioning.size(p) < partitioning.size(best));
            if better {
                best = p;
                best_score = score;
            }
        }
        best
    }

    fn flush_pending(&mut self) -> Result<()> {
        if let Some(mut pending) = self.pending.take() {
            let target = Self::choose_partition(&self.partitioning, &pending.assigned_neighbours);
            self.partitioning.assign(pending.id, target)?;
            // Recycle the neighbour buffer for the next pending vertex.
            pending.assigned_neighbours.clear();
            self.spare_neighbours = pending.assigned_neighbours;
        }
        Ok(())
    }

    /// The shared per-element transition, used by both ingestion paths.
    fn ingest_element(&mut self, element: &StreamElement) -> Result<()> {
        match *element {
            StreamElement::AddVertex { id, label } => {
                self.stats.vertices_ingested += 1;
                // The previous vertex has now seen all of its back-edges.
                self.flush_pending()?;
                self.pending = Some(PendingVertex {
                    id,
                    label,
                    assigned_neighbours: std::mem::take(&mut self.spare_neighbours),
                });
            }
            StreamElement::AddEdge { source, target } => {
                self.stats.edges_ingested += 1;
                if let Some(pending) = self.pending.as_mut() {
                    let other = if source == pending.id {
                        Some(target)
                    } else if target == pending.id {
                        Some(source)
                    } else {
                        None
                    };
                    if let Some(other) = other {
                        if self.partitioning.is_assigned(other) {
                            pending.assigned_neighbours.push(other);
                        }
                        return Ok(());
                    }
                }
                // An edge between two already-assigned vertices does not
                // change any placement decision for LDG.
            }
            StreamElement::RemoveVertex { id } => {
                if self.pending.as_ref().is_some_and(|p| p.id == id) {
                    // The vertex never got placed: drop the buffered decision
                    // and recycle its neighbour buffer.
                    let mut pending = self.pending.take().expect("checked above");
                    pending.assigned_neighbours.clear();
                    self.spare_neighbours = pending.assigned_neighbours;
                } else {
                    self.partitioning.unassign(id);
                    if let Some(pending) = self.pending.as_mut() {
                        // The dead vertex must no longer pull the pending
                        // vertex towards its old partition.
                        pending.assigned_neighbours.retain(|&n| n != id);
                    }
                }
            }
            StreamElement::RemoveEdge { source, target } => {
                if let Some(pending) = self.pending.as_mut() {
                    let other = if source == pending.id {
                        Some(target)
                    } else if target == pending.id {
                        Some(source)
                    } else {
                        None
                    };
                    if let Some(other) = other {
                        // Remove one occurrence, mirroring the one push the
                        // matching AddEdge performed.
                        if let Some(pos) =
                            pending.assigned_neighbours.iter().position(|&n| n == other)
                        {
                            pending.assigned_neighbours.swap_remove(pos);
                        }
                    }
                }
            }
            StreamElement::Relabel { id, label } => {
                if let Some(pending) = self.pending.as_mut() {
                    if pending.id == id {
                        pending.label = label;
                    }
                }
                // Labels of already-placed vertices do not feed LDG's score.
            }
        }
        Ok(())
    }
}

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn ingest(&mut self, element: &StreamElement) -> Result<()> {
        self.ingest_element(element)
    }

    fn ingest_batch(&mut self, batch: &[StreamElement]) -> Result<()> {
        // Amortised fast path: one assignment-table reservation covers every
        // vertex placement the chunk will trigger (each AddVertex flushes at
        // most one pending decision), then the chunk runs through the
        // monomorphised per-element transition without dynamic dispatch.
        self.stats.batches_ingested += 1;
        let vertices = batch.iter().filter(|e| e.is_vertex()).count();
        self.partitioning.reserve(vertices);
        for element in batch {
            self.ingest_element(element)?;
        }
        Ok(())
    }

    fn snapshot(&self) -> Partitioning {
        self.partitioning.clone()
    }

    fn finish(&mut self) -> Result<Partitioning> {
        self.flush_pending()?;
        Ok(self.partitioning.take())
    }

    fn stats(&self) -> PartitionerStats {
        PartitionerStats {
            assigned: self.partitioning.assigned_count(),
            buffered: usize::from(self.pending.is_some()),
            ..self.stats
        }
    }
}

/// Convenience map type for tests that need to inspect assignments.
pub type AssignmentMap = FxHashMap<VertexId, PartitionId>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::traits::partition_stream;
    use loom_graph::generators::{
        barabasi_albert, community_graph, CommunityConfig, GeneratorConfig,
    };
    use loom_graph::ordering::StreamOrder;
    use loom_graph::{GraphStream, LabelledGraph};

    fn run_ldg(graph: &LabelledGraph, k: u32, order: &StreamOrder) -> Partitioning {
        let stream = GraphStream::from_graph(graph, order);
        let mut partitioner = LdgPartitioner::new(LdgConfig::new(k, graph.vertex_count())).unwrap();
        partition_stream(&mut partitioner, &stream).unwrap()
    }

    #[test]
    fn assigns_every_vertex_within_slack() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 3), 2).unwrap();
        let part = run_ldg(&g, 8, &StreamOrder::Random { seed: 1 });
        assert_eq!(part.assigned_count(), 2_000);
        // Soft capacity: no partition exceeds C (it can only be reached).
        for p in part.partitions() {
            assert!(part.size(p) <= part.capacity() + 1);
        }
        assert!(part.imbalance() < 1.3);
    }

    #[test]
    fn beats_hash_on_cut_ratio() {
        let g = barabasi_albert(GeneratorConfig::new(3_000, 4, 5), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 3 });

        let ldg = {
            let mut p = LdgPartitioner::new(LdgConfig::new(4, g.vertex_count())).unwrap();
            partition_stream(&mut p, &stream).unwrap()
        };
        let hash = {
            let mut p = crate::hash::HashPartitioner::new(4, g.vertex_count()).unwrap();
            partition_stream(&mut p, &stream).unwrap()
        };
        let ldg_cut = evaluate(&g, &ldg).cut_ratio;
        let hash_cut = evaluate(&g, &hash).cut_ratio;
        assert!(
            ldg_cut < hash_cut,
            "LDG ({ldg_cut:.3}) should cut fewer edges than hash ({hash_cut:.3})"
        );
    }

    #[test]
    fn keeps_communities_together_on_community_graphs() {
        let (g, membership) = community_graph(CommunityConfig {
            vertices: 800,
            communities: 4,
            p_in: 0.08,
            p_out: 0.002,
            label_count: 4,
            seed: 11,
        })
        .unwrap();
        // BFS ordering gives the heuristic the locality it needs.
        let part = run_ldg(&g, 4, &StreamOrder::Bfs);
        let agreement = crate::metrics::community_agreement(&g, &part, &membership);
        assert!(
            agreement > 0.5,
            "expected most community edges kept internal, got {agreement:.3}"
        );
    }

    #[test]
    fn isolated_vertices_go_to_least_loaded_partition() {
        let mut g = LabelledGraph::new();
        for _ in 0..12 {
            g.add_vertex(Label::new(0));
        }
        let part = run_ldg(&g, 4, &StreamOrder::Random { seed: 2 });
        // With no edges at all LDG degenerates to round-robin-ish balance.
        for p in part.partitions() {
            assert_eq!(part.size(p), 3);
        }
    }

    #[test]
    fn choose_partition_prefers_neighbour_majority() {
        let mut partitioning = Partitioning::new(2, 10).unwrap();
        for i in 0..3u64 {
            partitioning
                .assign(VertexId::new(i), PartitionId::new(0))
                .unwrap();
        }
        partitioning
            .assign(VertexId::new(3), PartitionId::new(1))
            .unwrap();
        let neighbours = vec![VertexId::new(0), VertexId::new(1), VertexId::new(3)];
        let choice = LdgPartitioner::choose_partition(&partitioning, &neighbours);
        assert_eq!(choice, PartitionId::new(0));
    }

    #[test]
    fn capacity_penalty_steers_away_from_full_partitions() {
        // Partition 0 holds most neighbours but is (almost) full; partition 1
        // holds one neighbour and is empty. With C = 4, LDG should pick p1.
        let mut partitioning = Partitioning::new(2, 4).unwrap();
        for i in 0..4u64 {
            partitioning
                .assign(VertexId::new(i), PartitionId::new(0))
                .unwrap();
        }
        partitioning
            .assign(VertexId::new(10), PartitionId::new(1))
            .unwrap();
        let neighbours: Vec<VertexId> = (0..4u64)
            .map(VertexId::new)
            .chain([VertexId::new(10)])
            .collect();
        let choice = LdgPartitioner::choose_partition(&partitioning, &neighbours);
        assert_eq!(choice, PartitionId::new(1));
    }

    #[test]
    fn batched_ingestion_matches_per_element() {
        let g = barabasi_albert(GeneratorConfig::new(1_200, 4, 13), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 17 });
        let reference = {
            let mut p = LdgPartitioner::new(LdgConfig::new(4, g.vertex_count())).unwrap();
            for element in &stream {
                p.ingest(element).unwrap();
            }
            p.finish().unwrap()
        };
        for chunk_size in [1usize, 64, 1024] {
            let mut p = LdgPartitioner::new(LdgConfig::new(4, g.vertex_count())).unwrap();
            let batched =
                crate::traits::partition_stream_batched(&mut p, &stream, chunk_size).unwrap();
            assert_eq!(batched.assigned_count(), reference.assigned_count());
            for (v, part) in reference.assignments() {
                assert_eq!(batched.partition_of(v), Some(part), "chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn snapshot_excludes_the_pending_vertex() {
        let mut p = LdgPartitioner::new(LdgConfig::new(2, 10)).unwrap();
        p.ingest(&StreamElement::AddVertex {
            id: VertexId::new(0),
            label: Label::new(0),
        })
        .unwrap();
        // Vertex 0 is still pending: the snapshot is empty, stats say so.
        assert_eq!(p.snapshot().assigned_count(), 0);
        assert_eq!(p.stats().buffered, 1);
        let finished = p.finish().unwrap();
        assert_eq!(finished.assigned_count(), 1);
        assert_eq!(p.stats().buffered, 0);
        assert_eq!(p.stats().assigned, 0, "finish moves the result out");
    }

    #[test]
    fn removals_update_pending_state_and_reclaim_load() {
        use loom_graph::{Label, VertexId};
        let mut p = LdgPartitioner::new(LdgConfig::new(2, 10)).unwrap();
        let add = |id: u64| StreamElement::AddVertex {
            id: VertexId::new(id),
            label: Label::new(0),
        };
        let edge = |a: u64, b: u64| StreamElement::AddEdge {
            source: VertexId::new(a),
            target: VertexId::new(b),
        };
        // Removing the pending vertex itself drops the buffered decision.
        p.ingest(&add(0)).unwrap();
        p.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(0),
        })
        .unwrap();
        assert_eq!(p.stats().buffered, 0);
        assert_eq!(p.finish().unwrap().assigned_count(), 0);

        // Removing an assigned vertex reclaims its slot and stops it pulling
        // the pending vertex towards its old partition.
        let mut p = LdgPartitioner::new(LdgConfig::new(2, 10)).unwrap();
        p.ingest_batch(&[add(0), add(1), edge(0, 1)]).unwrap();
        p.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(0),
        })
        .unwrap();
        let finished = p.finish().unwrap();
        assert_eq!(finished.assigned_count(), 1);
        assert_eq!(finished.partition_of(VertexId::new(0)), None);

        // RemoveEdge cancels exactly one matching AddEdge for the pending
        // vertex; Relabel updates the buffered label without placing anything.
        let mut p = LdgPartitioner::new(LdgConfig::new(2, 10)).unwrap();
        p.ingest_batch(&[
            add(0),
            add(1),
            edge(0, 1),
            StreamElement::RemoveEdge {
                source: VertexId::new(1),
                target: VertexId::new(0),
            },
            StreamElement::Relabel {
                id: VertexId::new(1),
                label: Label::new(5),
            },
        ])
        .unwrap();
        let pending = p.pending.as_ref().unwrap();
        assert!(pending.assigned_neighbours.is_empty());
        assert_eq!(pending.label, Label::new(5));
        assert_eq!(p.finish().unwrap().assigned_count(), 2);
    }

    #[test]
    fn ordering_changes_results_but_not_correctness() {
        let g = barabasi_albert(GeneratorConfig::new(500, 4, 2), 2).unwrap();
        for order in [
            StreamOrder::Bfs,
            StreamOrder::Dfs,
            StreamOrder::Adversarial,
            StreamOrder::Random { seed: 5 },
        ] {
            let part = run_ldg(&g, 4, &order);
            assert_eq!(part.assigned_count(), g.vertex_count());
        }
    }
}
