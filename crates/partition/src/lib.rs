//! # loom-partition
//!
//! Graph partitioners and partition-quality metrics for the LOOM stack
//! (Firth & Missier, GraphQ@EDBT 2016).
//!
//! The crate provides the *workload-agnostic* baselines the paper builds on
//! and compares against, plus the shared machinery the workload-aware LOOM
//! partitioner (in `loom-core`) reuses:
//!
//! * [`partition`] — partition identifiers, the assignment table
//!   ([`Partitioning`]) and capacity accounting;
//! * [`metrics`] — edge cut, cut ratio, balance/imbalance, communication
//!   volume and ground-truth community agreement;
//! * [`migrate`] — the incremental re-partitioner: bounded batches of
//!   gain-scored, Fennel-balance-penalized vertex moves that repair a
//!   placement after workload drift (consumed by `loom-adapt`);
//! * [`traits`] — the object-safe [`Partitioner`] contract (batched
//!   ingestion, non-destructive snapshots, move-out `finish`, unified stats)
//!   plus drivers that feed a [`loom_graph::GraphStream`] through any
//!   implementation, per element or in chunks;
//! * [`spec`] — the declarative [`PartitionerSpec`] / [`PartitionerRegistry`]
//!   layer that builds any partitioner as a `Box<dyn Partitioner>` from plain
//!   serde data;
//! * [`hash`] — hash partitioning (the default placement strategy of
//!   distributed graph stores, the paper's strawman);
//! * [`ldg`] — Linear Deterministic Greedy (Stanton & Kliot, KDD 2012), the
//!   heuristic LOOM extends;
//! * [`fennel`] — Fennel (Tsourakakis et al., WSDM 2014);
//! * [`window`] — a sliding buffer over a graph stream, shared by LOOM and
//!   by windowed variants of the baselines;
//! * [`offline`] — a multilevel (METIS-like) offline partitioner used as the
//!   quality reference point.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fennel;
pub mod hash;
pub mod ldg;
pub mod metrics;
pub mod migrate;
pub mod offline;
pub mod partition;
pub mod spec;
pub mod traits;
pub mod window;

pub use error::PartitionError;
pub use fennel::FennelPartitioner;
pub use hash::HashPartitioner;
pub use ldg::LdgPartitioner;
pub use migrate::{MigrationConfig, MigrationPlan, MigrationPlanner, VertexMove};
pub use partition::{PartitionId, Partitioning};
pub use spec::{build_baseline, LoomConfig, PartitionerRegistry, PartitionerSpec};
#[allow(deprecated)]
pub use traits::StreamingPartitioner;
pub use traits::{partition_stream, partition_stream_batched, Partitioner, PartitionerStats};

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::error::PartitionError;
    pub use crate::fennel::{FennelConfig, FennelPartitioner};
    pub use crate::hash::{HashConfig, HashPartitioner};
    pub use crate::ldg::{LdgConfig, LdgPartitioner};
    pub use crate::metrics::{PartitionQuality, QualityReport};
    pub use crate::migrate::{MigrationConfig, MigrationPlan, MigrationPlanner, VertexMove};
    pub use crate::offline::{MultilevelConfig, MultilevelPartitioner};
    pub use crate::partition::{PartitionId, Partitioning};
    pub use crate::spec::{build_baseline, LoomConfig, PartitionerRegistry, PartitionerSpec};
    pub use crate::traits::{
        partition_stream, partition_stream_batched, Partitioner, PartitionerStats,
    };
    pub use crate::window::StreamWindow;
}
