//! Partition identifiers and the vertex → partition assignment table.
//!
//! A k-balanced graph partitioning (paper §2) is a disjoint family of vertex
//! sets. [`Partitioning`] is the mutable assignment table every partitioner
//! in this workspace produces: it tracks which partition each vertex lives
//! in, per-partition sizes, and the capacity constraint `C` that the LDG
//! penalty term is computed against.

use crate::error::{PartitionError, Result};
use loom_graph::fxhash::FxHashMap;
use loom_graph::VertexId;
use serde::{Deserialize, Serialize};

/// Identifier of a partition (`0..k`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Create a partition id.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A (possibly partial) assignment of vertices to `k` partitions with a
/// per-partition capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partitioning {
    k: u32,
    capacity: usize,
    assignment: FxHashMap<VertexId, PartitionId>,
    sizes: Vec<usize>,
}

impl Partitioning {
    /// Create an empty partitioning with `k` partitions, each with capacity
    /// `capacity` (the `C` of the LDG weighting term).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for `k == 0` or
    /// `capacity == 0`.
    pub fn new(k: u32, capacity: usize) -> Result<Self> {
        if k == 0 {
            return Err(PartitionError::InvalidConfig(
                "need at least one partition".into(),
            ));
        }
        if capacity == 0 {
            return Err(PartitionError::InvalidConfig(
                "capacity must be positive".into(),
            ));
        }
        Ok(Self {
            k,
            capacity,
            assignment: FxHashMap::default(),
            sizes: vec![0; k as usize],
        })
    }

    /// Create a partitioning sized for a graph of `expected_vertices`
    /// vertices with a multiplicative balance `slack` (e.g. `1.1` allows each
    /// partition to exceed the ideal size `n / k` by 10%).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Partitioning::new`]; additionally rejects
    /// non-finite or sub-unit slack.
    pub fn with_slack(k: u32, expected_vertices: usize, slack: f64) -> Result<Self> {
        if !slack.is_finite() || slack < 1.0 {
            return Err(PartitionError::InvalidConfig(format!(
                "slack must be >= 1.0, got {slack}"
            )));
        }
        let ideal = (expected_vertices as f64 / k.max(1) as f64).ceil();
        let capacity = ((ideal * slack).ceil() as usize).max(1);
        Self::new(k, capacity)
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The per-partition capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of assigned vertices.
    pub fn assigned_count(&self) -> usize {
        self.assignment.len()
    }

    /// Whether no vertex has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The partition a vertex was assigned to, if any.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> Option<PartitionId> {
        self.assignment.get(&v).copied()
    }

    /// Whether the vertex has been assigned.
    #[inline]
    pub fn is_assigned(&self, v: VertexId) -> bool {
        self.assignment.contains_key(&v)
    }

    /// Current size (vertex count) of a partition.
    #[inline]
    pub fn size(&self, p: PartitionId) -> usize {
        self.sizes.get(p.index()).copied().unwrap_or(0)
    }

    /// Sizes of all partitions, indexed by partition id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Remaining capacity of a partition (0 if full or unknown).
    #[inline]
    pub fn free_capacity(&self, p: PartitionId) -> usize {
        self.capacity.saturating_sub(self.size(p))
    }

    /// The LDG capacity penalty `1 - |V_i| / C` for a partition, clamped to
    /// `[0, 1]`.
    #[inline]
    pub fn capacity_penalty(&self, p: PartitionId) -> f64 {
        (1.0 - self.size(p) as f64 / self.capacity as f64).clamp(0.0, 1.0)
    }

    /// Whether a partition still has room for `count` more vertices.
    #[inline]
    pub fn has_room_for(&self, p: PartitionId, count: usize) -> bool {
        self.size(p) + count <= self.capacity
    }

    /// Iterate over partition ids `0..k`.
    pub fn partitions(&self) -> impl Iterator<Item = PartitionId> {
        (0..self.k).map(PartitionId::new)
    }

    /// Assign a vertex to a partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::AlreadyAssigned`] if the vertex has already
    /// been placed and [`PartitionError::UnknownPartition`] for out-of-range
    /// partitions. Capacity is *not* enforced here: streaming heuristics may
    /// overflow the soft capacity when every partition is full, exactly as in
    /// the original LDG formulation.
    pub fn assign(&mut self, v: VertexId, p: PartitionId) -> Result<()> {
        if p.0 >= self.k {
            return Err(PartitionError::UnknownPartition {
                partition: p.0,
                k: self.k,
            });
        }
        if self.assignment.contains_key(&v) {
            return Err(PartitionError::AlreadyAssigned(v));
        }
        self.assignment.insert(v, p);
        self.sizes[p.index()] += 1;
        Ok(())
    }

    /// Move an already assigned vertex to a different partition (used by the
    /// offline refinement passes).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::NotAssigned`] if the vertex has no current
    /// assignment and [`PartitionError::UnknownPartition`] for out-of-range
    /// targets.
    pub fn move_vertex(&mut self, v: VertexId, to: PartitionId) -> Result<()> {
        if to.0 >= self.k {
            return Err(PartitionError::UnknownPartition {
                partition: to.0,
                k: self.k,
            });
        }
        let Some(current) = self.assignment.get_mut(&v) else {
            return Err(PartitionError::NotAssigned(v));
        };
        let from = *current;
        if from == to {
            return Ok(());
        }
        *current = to;
        self.sizes[from.index()] -= 1;
        self.sizes[to.index()] += 1;
        Ok(())
    }

    /// Drop a vertex's assignment entirely, decrementing its partition's
    /// size, and return the partition it was removed from. Used when the
    /// stream deletes a vertex: the slot is reclaimed, so the id may later be
    /// re-assigned (re-add after delete). Unassigned vertices are a no-op.
    pub fn unassign(&mut self, v: VertexId) -> Option<PartitionId> {
        let p = self.assignment.remove(&v)?;
        self.sizes[p.index()] -= 1;
        Some(p)
    }

    /// Pre-reserve space for at least `additional` more assignments. Batched
    /// ingestion uses this to amortise hash-table growth across a chunk.
    pub fn reserve(&mut self, additional: usize) {
        self.assignment.reserve(additional);
    }

    /// Move the assignment table out, leaving this partitioning empty but
    /// with the same `k` and capacity.
    ///
    /// This is the clone-free way for a partitioner's `finish` to hand over
    /// its result; use `clone` (via `Partitioner::snapshot`) when the builder
    /// must keep its state.
    pub fn take(&mut self) -> Partitioning {
        Partitioning {
            k: self.k,
            capacity: self.capacity,
            assignment: std::mem::take(&mut self.assignment),
            sizes: std::mem::replace(&mut self.sizes, vec![0; self.k as usize]),
        }
    }

    /// Iterate over all `(vertex, partition)` assignments (arbitrary order).
    pub fn assignments(&self) -> impl Iterator<Item = (VertexId, PartitionId)> + '_ {
        self.assignment.iter().map(|(&v, &p)| (v, p))
    }

    /// The vertices assigned to partition `p`, sorted by id.
    pub fn members(&self, p: PartitionId) -> Vec<VertexId> {
        let mut members: Vec<VertexId> = self
            .assignment
            .iter()
            .filter(|(_, &q)| q == p)
            .map(|(&v, _)| v)
            .collect();
        members.sort_unstable();
        members
    }

    /// The emptiest partition (smallest current size; ties broken towards the
    /// lowest id). Useful as a fallback assignment target.
    pub fn least_loaded(&self) -> PartitionId {
        let index = self
            .sizes
            .iter()
            .enumerate()
            .min_by_key(|&(i, &s)| (s, i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        PartitionId::new(index as u32)
    }

    /// The imbalance factor `max_i |V_i| / (n / k)` where `n` is the number of
    /// assigned vertices. 1.0 is perfectly balanced; empty partitionings
    /// report 1.0.
    pub fn imbalance(&self) -> f64 {
        let n = self.assignment.len();
        if n == 0 {
            return 1.0;
        }
        let ideal = n as f64 / self.k as f64;
        let max = *self.sizes.iter().max().unwrap_or(&0);
        max as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId::new(x)
    }

    fn p(x: u32) -> PartitionId {
        PartitionId::new(x)
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(Partitioning::new(0, 10).is_err());
        assert!(Partitioning::new(4, 0).is_err());
        assert!(Partitioning::with_slack(4, 100, 0.5).is_err());
        let part = Partitioning::with_slack(4, 100, 1.2).unwrap();
        assert_eq!(part.k(), 4);
        assert_eq!(part.capacity(), 30); // ceil(25 * 1.2)
    }

    #[test]
    fn assign_and_lookup() {
        let mut part = Partitioning::new(2, 10).unwrap();
        part.assign(v(1), p(0)).unwrap();
        part.assign(v(2), p(1)).unwrap();
        assert_eq!(part.partition_of(v(1)), Some(p(0)));
        assert_eq!(part.partition_of(v(3)), None);
        assert!(part.is_assigned(v(2)));
        assert_eq!(part.size(p(0)), 1);
        assert_eq!(part.assigned_count(), 2);
        assert_eq!(part.members(p(1)), vec![v(2)]);
    }

    #[test]
    fn double_assignment_and_bad_partition_are_errors() {
        let mut part = Partitioning::new(2, 10).unwrap();
        part.assign(v(1), p(0)).unwrap();
        assert!(matches!(
            part.assign(v(1), p(1)),
            Err(PartitionError::AlreadyAssigned(_))
        ));
        assert!(matches!(
            part.assign(v(2), p(7)),
            Err(PartitionError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn unassign_reclaims_the_slot_for_readd() {
        let mut part = Partitioning::new(2, 10).unwrap();
        part.assign(v(1), p(0)).unwrap();
        part.assign(v(2), p(0)).unwrap();
        assert_eq!(part.unassign(v(1)), Some(p(0)));
        assert_eq!(part.size(p(0)), 1);
        assert_eq!(part.assigned_count(), 1);
        assert!(!part.is_assigned(v(1)));
        // Unknown vertex: no-op.
        assert_eq!(part.unassign(v(9)), None);
        // The id can be re-assigned after removal (re-add after delete).
        part.assign(v(1), p(1)).unwrap();
        assert_eq!(part.partition_of(v(1)), Some(p(1)));
        assert_eq!(part.size(p(1)), 1);
    }

    #[test]
    fn move_vertex_updates_sizes() {
        let mut part = Partitioning::new(2, 10).unwrap();
        part.assign(v(1), p(0)).unwrap();
        part.move_vertex(v(1), p(1)).unwrap();
        assert_eq!(part.size(p(0)), 0);
        assert_eq!(part.size(p(1)), 1);
        // Moving to the same partition is a no-op.
        part.move_vertex(v(1), p(1)).unwrap();
        assert_eq!(part.size(p(1)), 1);
        assert!(part.move_vertex(v(9), p(0)).is_err());
        assert!(part.move_vertex(v(1), p(9)).is_err());
    }

    #[test]
    fn capacity_penalty_and_room() {
        let mut part = Partitioning::new(2, 4).unwrap();
        assert_eq!(part.capacity_penalty(p(0)), 1.0);
        for i in 0..3 {
            part.assign(v(i), p(0)).unwrap();
        }
        assert!((part.capacity_penalty(p(0)) - 0.25).abs() < 1e-12);
        assert_eq!(part.free_capacity(p(0)), 1);
        assert!(part.has_room_for(p(0), 1));
        assert!(!part.has_room_for(p(0), 2));
        part.assign(v(3), p(0)).unwrap();
        assert_eq!(part.capacity_penalty(p(0)), 0.0);
    }

    #[test]
    fn imbalance_and_least_loaded() {
        let mut part = Partitioning::new(2, 100).unwrap();
        assert_eq!(part.imbalance(), 1.0);
        for i in 0..6 {
            part.assign(v(i), p(0)).unwrap();
        }
        for i in 6..8 {
            part.assign(v(i), p(1)).unwrap();
        }
        // max = 6, ideal = 4 → 1.5
        assert!((part.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(part.least_loaded(), p(1));
    }

    #[test]
    fn take_moves_assignments_and_resets_in_place() {
        let mut part = Partitioning::new(2, 10).unwrap();
        part.assign(v(1), p(0)).unwrap();
        part.assign(v(2), p(1)).unwrap();
        let taken = part.take();
        assert_eq!(taken.assigned_count(), 2);
        assert_eq!(taken.k(), 2);
        assert_eq!(taken.capacity(), 10);
        assert_eq!(part.assigned_count(), 0);
        assert_eq!(part.size(p(0)), 0);
        // The emptied partitioning is still usable.
        part.assign(v(1), p(1)).unwrap();
        assert_eq!(part.size(p(1)), 1);
    }

    #[test]
    fn partitions_iterator_covers_all_ids() {
        let part = Partitioning::new(3, 5).unwrap();
        let ids: Vec<u32> = part.partitions().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
