//! Declarative partitioner specifications and the builder registry.
//!
//! A [`PartitionerSpec`] is plain serde-compatible data describing *which*
//! partitioner to run with *which* parameters — the FDB-style declarative
//! layer over the fixed engines. Benches, the experiment runner and the
//! top-level `loom::Session` façade construct partitioners from specs via a
//! [`PartitionerRegistry`] instead of hand-wired `match` arms, so a new
//! partitioner (or an extension crate's partitioner) plugs into every harness
//! at once.
//!
//! Layering: this crate's [`PartitionerRegistry::baselines`] can build the
//! workload-agnostic partitioners (Hash, LDG, Fennel). The workload-aware
//! LOOM partitioner additionally needs a mined workload summary, so
//! `loom-core` provides `workload_registry`, which extends the baseline
//! registry with a builder for [`PartitionerSpec::Loom`].

use crate::error::{PartitionError, Result};
use crate::fennel::{FennelConfig, FennelPartitioner};
use crate::hash::{HashConfig, HashPartitioner};
use crate::ldg::{LdgConfig, LdgPartitioner};
use crate::traits::Partitioner;
use serde::{Deserialize, Serialize};

/// Configuration of the workload-aware LOOM partitioner (built by
/// `loom-core`'s `LoomPartitioner`; the config lives here so the declarative
/// [`PartitionerSpec`] layer can describe every partitioner in one enum).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoomConfig {
    /// Number of partitions `k`.
    pub k: u32,
    /// Expected number of vertices in the stream (drives the LDG capacity
    /// `C = slack · n / k`).
    pub expected_vertices: usize,
    /// Multiplicative balance slack (≥ 1.0).
    pub slack: f64,
    /// Size of the sliding stream window, in vertices.
    pub window_size: usize,
    /// The frequency threshold `T`: TPSTry++ nodes with a p-value at or above
    /// this are treated as motifs worth keeping intact.
    pub motif_threshold: f64,
    /// Upper bound on the size (vertices) of a motif cluster assigned as a
    /// unit; larger clusters are split back into single-vertex assignments to
    /// protect balance (the pathology the paper's §4.4 warns about).
    pub max_cluster_size: usize,
    /// Ablation switch: when `false` LOOM ignores motifs entirely and behaves
    /// as windowed LDG.
    pub motif_clustering: bool,
    /// Ablation switch: when `false` the LDG capacity penalty is dropped from
    /// the cluster placement score (pure neighbour-count greedy).
    pub capacity_penalty: bool,
    /// Ablation switch: when `false` only the match containing the evicted
    /// vertex is co-assigned, instead of the transitive union of overlapping
    /// matches.
    pub merge_overlapping: bool,
    /// When `true`, clusters exceeding `max_cluster_size` are split into
    /// connected chunks of at most `max_cluster_size` vertices and the chunk
    /// containing the evicted vertex is still assigned as a unit (the local
    /// partitioning of large matches the paper lists as future work). When
    /// `false`, oversized clusters fall back to single-vertex LDG.
    pub split_oversized_clusters: bool,
    /// When `true`, every signature match is verified with exact labelled
    /// isomorphism before being used (Song et al.'s secondary check). The
    /// paper skips verification; enabling it lets experiments measure the
    /// signature false-positive rate.
    pub verify_matches: bool,
}

impl LoomConfig {
    /// Sensible defaults for `k` partitions over a stream of about
    /// `expected_vertices` vertices.
    pub fn new(k: u32, expected_vertices: usize) -> Self {
        Self {
            k,
            expected_vertices,
            slack: 1.1,
            window_size: 256,
            motif_threshold: 0.4,
            max_cluster_size: 32,
            motif_clustering: true,
            capacity_penalty: true,
            merge_overlapping: true,
            split_oversized_clusters: true,
            verify_matches: false,
        }
    }

    /// Builder-style setter for the window size.
    #[must_use]
    pub fn with_window_size(mut self, window_size: usize) -> Self {
        self.window_size = window_size;
        self
    }

    /// Builder-style setter for the motif frequency threshold `T`.
    #[must_use]
    pub fn with_motif_threshold(mut self, threshold: f64) -> Self {
        self.motif_threshold = threshold;
        self
    }

    /// Builder-style setter for the balance slack.
    #[must_use]
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Builder-style setter for the maximum motif-cluster size.
    #[must_use]
    pub fn with_max_cluster_size(mut self, size: usize) -> Self {
        self.max_cluster_size = size;
        self
    }

    /// Disable motif clustering (ablation: pure windowed LDG).
    #[must_use]
    pub fn without_motif_clustering(mut self) -> Self {
        self.motif_clustering = false;
        self
    }

    /// Disable the capacity penalty in cluster scoring (ablation).
    #[must_use]
    pub fn without_capacity_penalty(mut self) -> Self {
        self.capacity_penalty = false;
        self
    }

    /// Disable merging of overlapping matches at assignment time (ablation).
    #[must_use]
    pub fn without_overlap_merging(mut self) -> Self {
        self.merge_overlapping = false;
        self
    }

    /// Disable chunked assignment of oversized clusters (ablation: oversized
    /// clusters fall back to single-vertex LDG).
    #[must_use]
    pub fn without_cluster_splitting(mut self) -> Self {
        self.split_oversized_clusters = false;
        self
    }

    /// Enable exact verification of every signature match.
    #[must_use]
    pub fn with_verification(mut self) -> Self {
        self.verify_matches = true;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        if self.window_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "window_size must be positive".into(),
            ));
        }
        if !self.slack.is_finite() || self.slack < 1.0 {
            return Err(PartitionError::InvalidConfig(format!(
                "slack must be >= 1.0, got {}",
                self.slack
            )));
        }
        if !(0.0..=1.0).contains(&self.motif_threshold) {
            return Err(PartitionError::InvalidConfig(format!(
                "motif_threshold must be in [0, 1], got {}",
                self.motif_threshold
            )));
        }
        if self.max_cluster_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "max_cluster_size must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Which partitioner to run, with its full configuration — serde-compatible
/// plain data, so experiment configs can carry it declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionerSpec {
    /// Hash placement (the distributed-store default strawman).
    Hash(HashConfig),
    /// Linear Deterministic Greedy (Stanton & Kliot, KDD 2012).
    Ldg(LdgConfig),
    /// Fennel (Tsourakakis et al., WSDM 2014).
    Fennel(FennelConfig),
    /// LOOM, the workload-aware partitioner (requires a mined workload; built
    /// by `loom-core`'s registry extension, not by
    /// [`PartitionerRegistry::baselines`]).
    Loom(LoomConfig),
}

impl PartitionerSpec {
    /// The short, stable partitioner name this spec builds.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionerSpec::Hash(_) => "hash",
            PartitionerSpec::Ldg(_) => "ldg",
            PartitionerSpec::Fennel(_) => "fennel",
            PartitionerSpec::Loom(_) => "loom",
        }
    }

    /// The number of partitions the spec asks for.
    pub fn k(&self) -> u32 {
        match self {
            PartitionerSpec::Hash(c) => c.k,
            PartitionerSpec::Ldg(c) => c.k,
            PartitionerSpec::Fennel(c) => c.k,
            PartitionerSpec::Loom(c) => c.k,
        }
    }
}

/// A builder registered with a [`PartitionerRegistry`].
///
/// Returns `Ok(None)` when the spec is not one it handles (the registry then
/// tries the next builder), `Ok(Some(_))` on success, and `Err` when the spec
/// *is* handled but invalid.
pub type SpecBuilder =
    Box<dyn Fn(&PartitionerSpec) -> Result<Option<Box<dyn Partitioner>>> + Send + Sync>;

/// An ordered chain of [`SpecBuilder`]s mapping declarative
/// [`PartitionerSpec`]s to ready-to-run `Box<dyn Partitioner>` instances.
///
/// Builders registered later are consulted first, so higher layers can extend
/// (or override) the baselines: `loom-core`'s `workload_registry` registers a
/// LOOM builder on top of [`PartitionerRegistry::baselines`].
#[derive(Default)]
pub struct PartitionerRegistry {
    builders: Vec<SpecBuilder>,
}

impl std::fmt::Debug for PartitionerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionerRegistry")
            .field("builders", &self.builders.len())
            .finish()
    }
}

impl PartitionerRegistry {
    /// An empty registry (no builder handles any spec).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry able to build the workload-agnostic baselines: Hash, LDG
    /// and Fennel. [`PartitionerSpec::Loom`] is rejected with a pointer to
    /// `loom-core`'s `workload_registry`.
    pub fn baselines() -> Self {
        let mut registry = Self::empty();
        registry.register(|spec| {
            Ok(match *spec {
                PartitionerSpec::Hash(config) => {
                    Some(Box::new(HashPartitioner::from_config(config)?) as Box<dyn Partitioner>)
                }
                PartitionerSpec::Ldg(config) => Some(Box::new(LdgPartitioner::new(config)?)),
                PartitionerSpec::Fennel(config) => Some(Box::new(FennelPartitioner::new(config)?)),
                PartitionerSpec::Loom(_) => None,
            })
        });
        registry
    }

    /// Register a builder. It is consulted *before* previously registered
    /// builders, so later registrations extend or override earlier ones.
    pub fn register<F>(&mut self, builder: F)
    where
        F: Fn(&PartitionerSpec) -> Result<Option<Box<dyn Partitioner>>> + Send + Sync + 'static,
    {
        self.builders.push(Box::new(builder));
    }

    /// Build a partitioner from a spec.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] when no registered builder
    /// handles the spec, and propagates the builder's own error when the spec
    /// is handled but invalid.
    pub fn build(&self, spec: &PartitionerSpec) -> Result<Box<dyn Partitioner>> {
        for builder in self.builders.iter().rev() {
            if let Some(partitioner) = builder(spec)? {
                return Ok(partitioner);
            }
        }
        Err(PartitionError::InvalidConfig(format!(
            "no registered builder handles the '{}' spec (LOOM specs need loom-core's \
             workload_registry or the loom::Session facade)",
            spec.name()
        )))
    }
}

/// Build one of the baseline partitioners (Hash, LDG, Fennel) from a spec
/// without constructing a registry first.
///
/// # Errors
///
/// Rejects [`PartitionerSpec::Loom`] (it needs a mined workload) and
/// propagates configuration errors.
pub fn build_baseline(spec: &PartitionerSpec) -> Result<Box<dyn Partitioner>> {
    PartitionerRegistry::baselines().build(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioning;
    use crate::traits::partition_stream;
    use loom_graph::generators::{barabasi_albert, GeneratorConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;

    fn specs() -> Vec<PartitionerSpec> {
        vec![
            PartitionerSpec::Hash(HashConfig::new(4, 300)),
            PartitionerSpec::Ldg(LdgConfig::new(4, 1_000)),
            PartitionerSpec::Fennel(FennelConfig::new(4, 1_000, 3_000)),
        ]
    }

    #[test]
    fn baselines_build_and_partition() {
        let graph = barabasi_albert(GeneratorConfig::new(1_000, 4, 3), 2).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let registry = PartitionerRegistry::baselines();
        for spec in specs() {
            let mut partitioner = registry.build(&spec).unwrap();
            assert_eq!(partitioner.name(), spec.name());
            let partitioning = partition_stream(partitioner.as_mut(), &stream).unwrap();
            assert_eq!(partitioning.assigned_count(), 1_000, "{}", spec.name());
        }
    }

    #[test]
    fn loom_spec_is_rejected_without_a_workload_registry() {
        let spec = PartitionerSpec::Loom(LoomConfig::new(4, 100));
        let err = build_baseline(&spec)
            .err()
            .expect("loom spec must be rejected");
        assert!(err.to_string().contains("workload_registry"));
    }

    #[test]
    fn later_registrations_take_precedence() {
        struct Stub;
        impl Partitioner for Stub {
            fn name(&self) -> &'static str {
                "stub"
            }
            fn ingest(&mut self, _: &loom_graph::StreamElement) -> Result<()> {
                Ok(())
            }
            fn snapshot(&self) -> Partitioning {
                Partitioning::new(1, 1).unwrap()
            }
            fn finish(&mut self) -> Result<Partitioning> {
                Partitioning::new(1, 1)
            }
        }
        let mut registry = PartitionerRegistry::baselines();
        registry.register(|spec| {
            Ok(match spec {
                PartitionerSpec::Hash(_) => Some(Box::new(Stub) as Box<dyn Partitioner>),
                _ => None,
            })
        });
        let built = registry
            .build(&PartitionerSpec::Hash(HashConfig::new(2, 10)))
            .unwrap();
        assert_eq!(built.name(), "stub");
        // Other specs still fall through to the baselines.
        let ldg = registry
            .build(&PartitionerSpec::Ldg(LdgConfig::new(2, 10)))
            .unwrap();
        assert_eq!(ldg.name(), "ldg");
    }

    #[test]
    fn spec_reports_name_and_k() {
        for spec in specs() {
            assert!(spec.k() == 4);
            assert!(!spec.name().is_empty());
        }
        assert_eq!(PartitionerSpec::Loom(LoomConfig::new(8, 10)).name(), "loom");
        assert_eq!(PartitionerSpec::Loom(LoomConfig::new(8, 10)).k(), 8);
    }

    #[test]
    fn invalid_baseline_configs_propagate_errors() {
        let registry = PartitionerRegistry::baselines();
        let bad = PartitionerSpec::Fennel(FennelConfig {
            gamma: 0.5,
            ..FennelConfig::new(4, 100, 300)
        });
        assert!(registry.build(&bad).is_err());
    }

    // LoomConfig's own validation tests (moved here with the type).

    #[test]
    fn loom_defaults_are_valid() {
        assert!(LoomConfig::new(4, 10_000).validate().is_ok());
    }

    #[test]
    fn loom_builders_set_fields() {
        let config = LoomConfig::new(4, 1_000)
            .with_window_size(64)
            .with_motif_threshold(0.25)
            .with_slack(1.5)
            .with_max_cluster_size(10)
            .without_motif_clustering()
            .without_capacity_penalty()
            .without_overlap_merging()
            .without_cluster_splitting()
            .with_verification();
        assert_eq!(config.window_size, 64);
        assert!((config.motif_threshold - 0.25).abs() < 1e-12);
        assert!((config.slack - 1.5).abs() < 1e-12);
        assert_eq!(config.max_cluster_size, 10);
        assert!(!config.motif_clustering);
        assert!(!config.capacity_penalty);
        assert!(!config.merge_overlapping);
        assert!(!config.split_oversized_clusters);
        assert!(config.verify_matches);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn invalid_loom_configurations_are_rejected() {
        assert!(LoomConfig {
            k: 0,
            ..LoomConfig::new(4, 100)
        }
        .validate()
        .is_err());
        assert!(LoomConfig::new(4, 100)
            .with_window_size(0)
            .validate()
            .is_err());
        assert!(LoomConfig::new(4, 100).with_slack(0.9).validate().is_err());
        assert!(LoomConfig::new(4, 100)
            .with_motif_threshold(1.5)
            .validate()
            .is_err());
        assert!(LoomConfig::new(4, 100)
            .with_max_cluster_size(0)
            .validate()
            .is_err());
    }
}
