//! Error types for the partitioning layer.

use loom_graph::VertexId;
use std::fmt;

/// Errors produced by partitioner configuration and assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A partitioner was configured with zero partitions or an impossible
    /// capacity.
    InvalidConfig(String),
    /// An assignment referenced a partition outside `0..k`.
    UnknownPartition {
        /// The offending partition index.
        partition: u32,
        /// The number of partitions configured.
        k: u32,
    },
    /// A vertex was assigned twice.
    AlreadyAssigned(VertexId),
    /// An operation needed a vertex that has not been assigned yet.
    NotAssigned(VertexId),
    /// An underlying graph operation failed.
    Graph(loom_graph::GraphError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PartitionError::UnknownPartition { partition, k } => {
                write!(f, "partition {partition} out of range (k = {k})")
            }
            PartitionError::AlreadyAssigned(v) => write!(f, "vertex {v} is already assigned"),
            PartitionError::NotAssigned(v) => write!(f, "vertex {v} has not been assigned"),
            PartitionError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<loom_graph::GraphError> for PartitionError {
    fn from(err: loom_graph::GraphError) -> Self {
        PartitionError::Graph(err)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, PartitionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PartitionError::InvalidConfig("k = 0".into())
            .to_string()
            .contains("k = 0"));
        assert!(PartitionError::UnknownPartition { partition: 9, k: 4 }
            .to_string()
            .contains("out of range"));
        assert!(PartitionError::AlreadyAssigned(VertexId::new(2))
            .to_string()
            .contains("already"));
    }

    #[test]
    fn graph_error_converts() {
        let err: PartitionError = loom_graph::GraphError::MissingVertex(VertexId::new(0)).into();
        assert!(matches!(err, PartitionError::Graph(_)));
    }
}
