//! Incremental re-partitioning: bounded batches of gain-scored vertex moves.
//!
//! When the query workload drifts away from the distribution a partitioning
//! was mined for, a full repartition (and the migration storm it implies) is
//! rarely affordable. [`MigrationPlanner`] instead produces a **bounded
//! batch** of single-vertex moves: each move is scored by the *weighted
//! locality gain* it buys — edges are weighted by how hot their endpoint
//! labels are under the drifted workload — minus a Fennel-style balance
//! penalty (`α·γ·|V_i|^{γ−1}`, the same marginal-cost shape as
//! [`crate::fennel`]), and only moves whose net gain clears a threshold are
//! planned. Applying a plan leaves the partitioning valid (sizes maintained,
//! capacity respected) and touches at most `max_moves` vertices, so the
//! serving layer can rebuild only the affected shards.
//!
//! Candidates are scored against the input placement, but each accepted move
//! is re-validated against the *tentative* placement the batch has built so
//! far — so two sides of the same cut edge can never swap past each other,
//! and iterating rounds (re-planning against the applied placement until the
//! plan comes back empty) converges instead of oscillating.

use crate::error::Result;
use crate::partition::{PartitionId, Partitioning};
use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, LabelledGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Configuration for a [`MigrationPlanner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Maximum vertex moves per planning round (the migration budget).
    pub max_moves: usize,
    /// Minimum net gain (weighted locality gain minus balance penalty) a move
    /// must clear to be planned; filters churn that buys nothing.
    pub min_gain: f64,
    /// Scale of the Fennel-style balance penalty (1.0 = the Fennel α derived
    /// from the weighted edge mass; larger values defend balance harder).
    pub balance_penalty: f64,
    /// The γ exponent of the balance cost (Fennel recommends 1.5).
    pub gamma: f64,
    /// Base weight every edge carries regardless of label heat, so migration
    /// still repairs plain locality when the hot-label signal is sparse.
    pub base_edge_weight: f64,
}

impl MigrationConfig {
    /// A config with the given per-round move budget and planner defaults.
    pub fn new(max_moves: usize) -> Self {
        Self {
            max_moves: max_moves.max(1),
            min_gain: 1e-9,
            balance_penalty: 0.25,
            gamma: 1.5,
            base_edge_weight: 0.05,
        }
    }

    /// Builder-style minimum net gain.
    #[must_use]
    pub fn with_min_gain(mut self, min_gain: f64) -> Self {
        self.min_gain = min_gain;
        self
    }

    /// Builder-style balance-penalty scale.
    #[must_use]
    pub fn with_balance_penalty(mut self, scale: f64) -> Self {
        self.balance_penalty = scale.max(0.0);
        self
    }

    /// Builder-style base edge weight.
    #[must_use]
    pub fn with_base_edge_weight(mut self, base: f64) -> Self {
        self.base_edge_weight = base.max(0.0);
        self
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self::new(64)
    }
}

/// One planned vertex move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VertexMove {
    /// The vertex to move.
    pub vertex: VertexId,
    /// Its current partition.
    pub from: PartitionId,
    /// The partition it should move to.
    pub to: PartitionId,
    /// The net gain the planner scored for this move (weighted locality gain
    /// minus the balance penalty), at planning time.
    pub gain: f64,
}

/// A bounded batch of vertex moves, ordered best-gain first.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The planned moves, sorted by descending gain.
    pub moves: Vec<VertexMove>,
}

impl MigrationPlan {
    /// Whether the plan contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of planned moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Total net gain over all planned moves.
    pub fn total_gain(&self) -> f64 {
        self.moves.iter().map(|m| m.gain).sum()
    }

    /// Apply every move to a partitioning.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::PartitionError`] if a move references an
    /// unassigned vertex or an unknown partition (cannot happen for plans
    /// produced against the same partitioning).
    pub fn apply(&self, partitioning: &mut Partitioning) -> Result<()> {
        for m in &self.moves {
            partitioning.move_vertex(m.vertex, m.to)?;
        }
        Ok(())
    }
}

/// Plans bounded batches of gain-scored vertex moves against a drifted
/// workload's label weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationPlanner {
    config: MigrationConfig,
}

impl MigrationPlanner {
    /// Create a planner from a config.
    pub fn new(config: MigrationConfig) -> Self {
        Self { config }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// Weight of the undirected edge `u – v` under the hot-label weights:
    /// the base weight plus the heat of both endpoint labels.
    fn edge_weight(
        &self,
        graph: &LabelledGraph,
        hot: &FxHashMap<Label, f64>,
        u: VertexId,
        v: VertexId,
    ) -> f64 {
        let heat = |x: VertexId| {
            graph
                .label(x)
                .and_then(|l| hot.get(&l).copied())
                .unwrap_or(0.0)
        };
        self.config.base_edge_weight + heat(u) + heat(v)
    }

    /// Produce one bounded batch of moves for `partitioning` given the
    /// drifted workload's hot-label weights (`hot`, typically normalised so
    /// the hottest label weighs 1.0; labels absent from the map weigh 0).
    ///
    /// The plan is deterministic: candidates are scored against the input
    /// placement, sorted by `(gain, vertex id)`, and accepted greedily while
    /// they respect the partitioning's capacity and the move budget.
    pub fn plan(
        &self,
        graph: &LabelledGraph,
        partitioning: &Partitioning,
        hot: &FxHashMap<Label, f64>,
    ) -> MigrationPlan {
        let k = partitioning.k() as usize;
        let n = partitioning.assigned_count();
        if k < 2 || n == 0 {
            return MigrationPlan::default();
        }

        // Fennel-style α over the *weighted* edge mass, so the balance
        // penalty lives in the same units as the locality gain.
        let weighted_mass: f64 = graph
            .edges()
            .map(|e| self.edge_weight(graph, hot, e.lo, e.hi))
            .sum();
        let alpha = self.config.balance_penalty
            * weighted_mass.max(f64::MIN_POSITIVE)
            * (k as f64).powf(self.config.gamma - 1.0)
            / (n as f64).powf(self.config.gamma);
        let marginal =
            |size: usize| alpha * self.config.gamma * (size as f64).powf(self.config.gamma - 1.0);

        // Score every assigned vertex's best alternative partition.
        let mut candidates: Vec<VertexMove> = Vec::new();
        let mut affinity = vec![0.0f64; k];
        for v in graph.vertices_sorted() {
            let Some(from) = partitioning.partition_of(v) else {
                continue;
            };
            affinity.iter_mut().for_each(|a| *a = 0.0);
            let mut has_assigned_neighbour = false;
            for &u in graph.neighbors(v) {
                if let Some(p) = partitioning.partition_of(u) {
                    has_assigned_neighbour = true;
                    affinity[p.index()] += self.edge_weight(graph, hot, v, u);
                }
            }
            if !has_assigned_neighbour {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (p, &aff) in affinity.iter().enumerate() {
                if p == from.index() {
                    continue;
                }
                let locality = aff - affinity[from.index()];
                // Clamped at zero: a lighter target never *rewards* a move.
                // Rebalancing for its own sake is churn — the planner chases
                // locality only, with balance as a brake (and the capacity
                // cap as the hard ceiling).
                let penalty = (marginal(partitioning.size(PartitionId::new(p as u32)))
                    - marginal(partitioning.size(from).saturating_sub(1)))
                .max(0.0);
                let gain = locality - penalty;
                match best {
                    Some((_, bg)) if gain <= bg => {}
                    _ => best = Some((p, gain)),
                }
            }
            if let Some((p, gain)) = best {
                if gain > self.config.min_gain {
                    candidates.push(VertexMove {
                        vertex: v,
                        from,
                        to: PartitionId::new(p as u32),
                        gain,
                    });
                }
            }
        }

        // Best gains first; ties broken by vertex id for determinism.
        candidates.sort_by(|a, b| {
            b.gain
                .partial_cmp(&a.gain)
                .expect("gains are finite")
                .then_with(|| a.vertex.cmp(&b.vertex))
        });

        // Greedy acceptance under the move budget and the capacity cap. Each
        // candidate's gain is re-evaluated against the *tentative* placement
        // (the moves already accepted this batch) before it is taken —
        // without this, both sides of a cut edge can greedily swap past each
        // other and the batch oscillates instead of converging.
        let mut sizes: Vec<usize> = partitioning.sizes().to_vec();
        let capacity = partitioning.capacity();
        let mut tentative: FxHashMap<VertexId, u32> = FxHashMap::default();
        let mut moves = Vec::new();
        for m in candidates {
            if moves.len() >= self.config.max_moves {
                break;
            }
            if sizes[m.to.index()] >= capacity {
                continue;
            }
            let (mut aff_to, mut aff_from) = (0.0f64, 0.0f64);
            for &u in graph.neighbors(m.vertex) {
                let p = tentative
                    .get(&u)
                    .copied()
                    .or_else(|| partitioning.partition_of(u).map(|p| p.0));
                let Some(p) = p else { continue };
                let w = self.edge_weight(graph, hot, m.vertex, u);
                if p == m.to.0 {
                    aff_to += w;
                } else if p == m.from.0 {
                    aff_from += w;
                }
            }
            let penalty = (marginal(sizes[m.to.index()])
                - marginal(sizes[m.from.index()].saturating_sub(1)))
            .max(0.0);
            let gain = aff_to - aff_from - penalty;
            if gain <= self.config.min_gain {
                continue;
            }
            tentative.insert(m.vertex, m.to.0);
            sizes[m.from.index()] -= 1;
            sizes[m.to.index()] += 1;
            moves.push(VertexMove { gain, ..m });
        }
        MigrationPlan { moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn hot(labels: &[(u32, f64)]) -> FxHashMap<Label, f64> {
        labels.iter().map(|&(x, w)| (l(x), w)).collect()
    }

    /// Path a–b–c with a,b on p0 and c stranded on p1.
    fn split_path() -> (LabelledGraph, Partitioning) {
        let g = path_graph(3, &[l(0), l(1), l(2)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 8).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        (g, part)
    }

    #[test]
    fn reunites_a_split_hot_motif() {
        let (g, mut part) = split_path();
        let vs = g.vertices_sorted();
        let planner = MigrationPlanner::new(MigrationConfig::new(4));
        let plan = planner.plan(&g, &part, &hot(&[(0, 1.0), (1, 1.0), (2, 1.0)]));
        assert_eq!(plan.len(), 1);
        let m = plan.moves[0];
        assert_eq!(m.vertex, vs[2]);
        assert_eq!(m.from, PartitionId::new(1));
        assert_eq!(m.to, PartitionId::new(0));
        assert!(m.gain > 0.0);
        plan.apply(&mut part).unwrap();
        assert_eq!(part.partition_of(vs[2]), Some(PartitionId::new(0)));
        assert_eq!(part.size(PartitionId::new(0)), 3);
        // Re-planning against the repaired placement finds nothing left.
        assert!(planner.plan(&g, &part, &hot(&[(0, 1.0)])).is_empty());
    }

    #[test]
    fn respects_the_capacity_cap() {
        let (g, part) = split_path();
        // Capacity 2: partition 0 is already full, so the repair is refused.
        let mut tight = Partitioning::new(2, 2).unwrap();
        for (v, p) in part.assignments() {
            tight.assign(v, p).unwrap();
        }
        let planner = MigrationPlanner::new(MigrationConfig::new(4));
        let plan = planner.plan(&g, &tight, &hot(&[(0, 1.0), (1, 1.0), (2, 1.0)]));
        assert!(plan.is_empty());
    }

    #[test]
    fn bounded_by_the_move_budget() {
        // Many independent split edges; budget 2 keeps the batch at 2 moves.
        let mut g = LabelledGraph::new();
        let mut part = Partitioning::new(2, 64).unwrap();
        for _ in 0..8 {
            let a = g.add_vertex(l(0));
            let b = g.add_vertex(l(1));
            g.add_edge(a, b).unwrap();
            part.assign(a, PartitionId::new(0)).unwrap();
            part.assign(b, PartitionId::new(1)).unwrap();
        }
        let planner = MigrationPlanner::new(MigrationConfig::new(2));
        let plan = planner.plan(&g, &part, &hot(&[(0, 1.0), (1, 1.0)]));
        assert_eq!(plan.len(), 2);
        assert!(plan.total_gain() > 0.0);
    }

    #[test]
    fn min_gain_filters_churn() {
        let (g, part) = split_path();
        let planner = MigrationPlanner::new(MigrationConfig::new(4).with_min_gain(1e6));
        assert!(planner
            .plan(&g, &part, &hot(&[(0, 1.0), (1, 1.0), (2, 1.0)]))
            .is_empty());
    }

    #[test]
    fn balance_penalty_discourages_piling_onto_a_loaded_partition() {
        // A hub anchored to an already-heavy partition by ballast edges, with
        // leaves on the light one. The only locality-positive moves stack the
        // leaves onto the heavy partition: a mild balance penalty allows
        // that repair, a harsh one refuses it.
        let mut g = LabelledGraph::new();
        let mut part = Partitioning::new(2, 100).unwrap();
        let hub = g.add_vertex(l(0));
        part.assign(hub, PartitionId::new(1)).unwrap();
        for _ in 0..8 {
            let ballast = g.add_vertex(l(2));
            g.add_edge(hub, ballast).unwrap();
            part.assign(ballast, PartitionId::new(1)).unwrap();
        }
        for _ in 0..4 {
            let leaf = g.add_vertex(l(1));
            g.add_edge(hub, leaf).unwrap();
            part.assign(leaf, PartitionId::new(0)).unwrap();
        }
        let eager = MigrationPlanner::new(MigrationConfig::new(16));
        let timid = MigrationPlanner::new(MigrationConfig::new(16).with_balance_penalty(500.0));
        let weights = hot(&[(0, 1.0), (1, 1.0)]);
        let eager_plan = eager.plan(&g, &part, &weights);
        assert!(eager_plan.moves.iter().any(|m| m.to == PartitionId::new(1)));
        assert!(timid.plan(&g, &part, &weights).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, part) = split_path();
        let planner = MigrationPlanner::default();
        let weights = hot(&[(0, 0.5), (1, 1.0), (2, 0.25)]);
        assert_eq!(
            planner.plan(&g, &part, &weights),
            planner.plan(&g, &part, &weights)
        );
    }
}
