//! Hash partitioning.
//!
//! The default placement strategy of most distributed graph stores: a vertex
//! goes to `hash(id) mod k`. It is perfectly balanced in expectation, costs
//! nothing to compute, ignores locality entirely, and therefore cuts a
//! fraction `(k - 1) / k` of all edges in expectation — the strawman the
//! paper (and every streaming-partitioning paper) compares against.

use crate::error::Result;
use crate::partition::{PartitionId, Partitioning};
use crate::traits::StreamingPartitioner;
use loom_graph::StreamElement;

/// Streaming hash partitioner.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitioning: Partitioning,
    seed: u64,
}

impl HashPartitioner {
    /// Create a hash partitioner with `k` partitions and the given soft
    /// capacity (capacity is never exceeded by more than the hash skew since
    /// placement ignores it entirely; it is carried along only so quality
    /// reports are comparable).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PartitionError::InvalidConfig`] from
    /// [`Partitioning::new`].
    pub fn new(k: u32, capacity: usize) -> Result<Self> {
        Ok(Self {
            partitioning: Partitioning::new(k, capacity)?,
            seed: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// Use a custom hash seed (useful to test placement sensitivity).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn target(&self, raw_id: u64) -> PartitionId {
        // splitmix64-style finaliser: cheap and well distributed.
        let mut x = raw_id.wrapping_add(self.seed);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        PartitionId::new((x % u64::from(self.partitioning.k())) as u32)
    }
}

impl StreamingPartitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn ingest(&mut self, element: &StreamElement) -> Result<()> {
        if let StreamElement::AddVertex { id, .. } = element {
            let target = self.target(id.raw());
            self.partitioning.assign(*id, target)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<Partitioning> {
        Ok(self.partitioning.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::traits::partition_stream;
    use loom_graph::generators::{barabasi_albert, GeneratorConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;

    #[test]
    fn every_vertex_is_assigned_and_roughly_balanced() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 7), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 1 });
        let mut partitioner = HashPartitioner::new(4, 600).unwrap();
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(result.assigned_count(), 2_000);
        // Hash balance: every partition within 20% of ideal.
        for p in result.partitions() {
            let size = result.size(p) as f64;
            assert!((size - 500.0).abs() < 100.0, "size={size}");
        }
    }

    #[test]
    fn cut_ratio_is_close_to_expectation() {
        let g = barabasi_albert(GeneratorConfig::new(3_000, 4, 9), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 2 });
        let mut partitioner = HashPartitioner::new(4, 1_000).unwrap();
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        let report = evaluate(&g, &result);
        // Expectation is (k-1)/k = 0.75; allow generous slack.
        assert!(report.cut_ratio > 0.65, "cut ratio {}", report.cut_ratio);
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let a = HashPartitioner::new(8, 100).unwrap();
        let mut b = HashPartitioner::new(8, 100).unwrap();
        let c = HashPartitioner::new(8, 100).unwrap().with_seed(7);
        for id in 0..100u64 {
            assert_eq!(a.target(id), b.target(id));
        }
        let differs = (0..100u64).any(|id| a.target(id) != c.target(id));
        assert!(differs);
        // name and finish are stable
        assert_eq!(a.name(), "hash");
        assert_eq!(b.finish().unwrap().assigned_count(), 0);
    }
}
