//! Hash partitioning.
//!
//! The default placement strategy of most distributed graph stores: a vertex
//! goes to `hash(id) mod k`. It is perfectly balanced in expectation, costs
//! nothing to compute, ignores locality entirely, and therefore cuts a
//! fraction `(k - 1) / k` of all edges in expectation — the strawman the
//! paper (and every streaming-partitioning paper) compares against.

use crate::error::Result;
use crate::partition::{PartitionId, Partitioning};
use crate::traits::{Partitioner, PartitionerStats};
use loom_graph::StreamElement;
use serde::{Deserialize, Serialize};

/// Configuration for [`HashPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashConfig {
    /// Number of partitions.
    pub k: u32,
    /// Soft per-partition capacity (carried along only so quality reports are
    /// comparable; hash placement ignores it).
    pub capacity: usize,
    /// Hash seed (change it to test placement sensitivity).
    pub seed: u64,
}

impl HashConfig {
    /// Configuration with the default seed.
    pub fn new(k: u32, capacity: usize) -> Self {
        Self {
            k,
            capacity,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Use a custom hash seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Streaming hash partitioner.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitioning: Partitioning,
    seed: u64,
    stats: PartitionerStats,
}

impl HashPartitioner {
    /// Create a hash partitioner with `k` partitions and the given soft
    /// capacity (capacity is never exceeded by more than the hash skew since
    /// placement ignores it entirely; it is carried along only so quality
    /// reports are comparable).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PartitionError::InvalidConfig`] from
    /// [`Partitioning::new`].
    pub fn new(k: u32, capacity: usize) -> Result<Self> {
        Self::from_config(HashConfig::new(k, capacity))
    }

    /// Create a hash partitioner from a declarative [`HashConfig`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PartitionError::InvalidConfig`] from
    /// [`Partitioning::new`].
    pub fn from_config(config: HashConfig) -> Result<Self> {
        Ok(Self {
            partitioning: Partitioning::new(config.k, config.capacity)?,
            seed: config.seed,
            stats: PartitionerStats::default(),
        })
    }

    /// Use a custom hash seed (useful to test placement sensitivity).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn target(&self, raw_id: u64) -> PartitionId {
        // splitmix64-style finaliser: cheap and well distributed.
        let mut x = raw_id.wrapping_add(self.seed);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        PartitionId::new((x % u64::from(self.partitioning.k())) as u32)
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn ingest(&mut self, element: &StreamElement) -> Result<()> {
        match element {
            StreamElement::AddVertex { id, .. } => {
                self.stats.vertices_ingested += 1;
                let target = self.target(id.raw());
                self.partitioning.assign(*id, target)?;
            }
            StreamElement::AddEdge { .. } => {
                self.stats.edges_ingested += 1;
            }
            StreamElement::RemoveVertex { id } => {
                // Reclaim the load slot; a later re-add hashes to the same
                // partition, so placement stays deterministic across churn.
                self.partitioning.unassign(*id);
            }
            // Hash placement ignores edges and labels entirely.
            StreamElement::RemoveEdge { .. } | StreamElement::Relabel { .. } => {}
        }
        Ok(())
    }

    fn ingest_batch(&mut self, batch: &[StreamElement]) -> Result<()> {
        // Amortised fast path: grow the assignment table once for the whole
        // chunk, then place vertices in a tight loop. Edges never affect hash
        // placement, so they are only counted; mutations run through the
        // per-element transition.
        self.stats.batches_ingested += 1;
        let vertices = batch.iter().filter(|e| e.is_vertex()).count();
        self.partitioning.reserve(vertices);
        self.stats.vertices_ingested += vertices;
        self.stats.edges_ingested += batch.iter().filter(|e| e.is_edge()).count();
        for element in batch {
            match element {
                StreamElement::AddVertex { id, .. } => {
                    let target = self.target(id.raw());
                    self.partitioning.assign(*id, target)?;
                }
                StreamElement::RemoveVertex { id } => {
                    self.partitioning.unassign(*id);
                }
                StreamElement::AddEdge { .. }
                | StreamElement::RemoveEdge { .. }
                | StreamElement::Relabel { .. } => {}
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> Partitioning {
        self.partitioning.clone()
    }

    fn finish(&mut self) -> Result<Partitioning> {
        Ok(self.partitioning.take())
    }

    fn stats(&self) -> PartitionerStats {
        PartitionerStats {
            assigned: self.partitioning.assigned_count(),
            buffered: 0,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::traits::{partition_stream, partition_stream_batched};
    use loom_graph::generators::{barabasi_albert, GeneratorConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;

    #[test]
    fn every_vertex_is_assigned_and_roughly_balanced() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 7), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 1 });
        let mut partitioner = HashPartitioner::new(4, 600).unwrap();
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(result.assigned_count(), 2_000);
        // Hash balance: every partition within 20% of ideal.
        for p in result.partitions() {
            let size = result.size(p) as f64;
            assert!((size - 500.0).abs() < 100.0, "size={size}");
        }
    }

    #[test]
    fn cut_ratio_is_close_to_expectation() {
        let g = barabasi_albert(GeneratorConfig::new(3_000, 4, 9), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 2 });
        let mut partitioner = HashPartitioner::new(4, 1_000).unwrap();
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        let report = evaluate(&g, &result);
        // Expectation is (k-1)/k = 0.75; allow generous slack.
        assert!(report.cut_ratio > 0.65, "cut ratio {}", report.cut_ratio);
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let a = HashPartitioner::new(8, 100).unwrap();
        let mut b = HashPartitioner::new(8, 100).unwrap();
        let c = HashPartitioner::new(8, 100).unwrap().with_seed(7);
        for id in 0..100u64 {
            assert_eq!(a.target(id), b.target(id));
        }
        let differs = (0..100u64).any(|id| a.target(id) != c.target(id));
        assert!(differs);
        // name and finish are stable
        assert_eq!(a.name(), "hash");
        assert_eq!(b.finish().unwrap().assigned_count(), 0);
        // from_config honours the seed.
        let d = HashPartitioner::from_config(HashConfig::new(8, 100).with_seed(7)).unwrap();
        for id in 0..100u64 {
            assert_eq!(c.target(id), d.target(id));
        }
    }

    #[test]
    fn batched_ingestion_matches_per_element() {
        let g = barabasi_albert(GeneratorConfig::new(1_000, 4, 5), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 3 });
        let mut per_element = HashPartitioner::new(4, 300).unwrap();
        for element in &stream {
            per_element.ingest(element).unwrap();
        }
        let reference = per_element.finish().unwrap();
        for chunk_size in [1usize, 64, 1024] {
            let mut batched = HashPartitioner::new(4, 300).unwrap();
            let result = partition_stream_batched(&mut batched, &stream, chunk_size).unwrap();
            assert_eq!(result.assigned_count(), reference.assigned_count());
            for (v, p) in reference.assignments() {
                assert_eq!(result.partition_of(v), Some(p), "chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn removals_reclaim_slots_and_readds_land_on_the_same_partition() {
        use loom_graph::{Label, VertexId};
        let mut p = HashPartitioner::new(4, 100).unwrap();
        let add = |id: u64| StreamElement::AddVertex {
            id: VertexId::new(id),
            label: Label::new(0),
        };
        p.ingest_batch(&[add(0), add(1), add(2)]).unwrap();
        let before = p.snapshot().partition_of(VertexId::new(1)).unwrap();
        p.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(1),
        })
        .unwrap();
        assert_eq!(p.snapshot().assigned_count(), 2);
        // Edge removals and relabels are no-ops for hash placement.
        p.ingest_batch(&[
            StreamElement::RemoveEdge {
                source: VertexId::new(0),
                target: VertexId::new(2),
            },
            StreamElement::Relabel {
                id: VertexId::new(0),
                label: Label::new(3),
            },
            add(1),
        ])
        .unwrap();
        let snap = p.snapshot();
        assert_eq!(snap.assigned_count(), 3);
        assert_eq!(snap.partition_of(VertexId::new(1)), Some(before));
        let stats = p.stats();
        assert_eq!(stats.vertices_ingested, 4);
        assert_eq!(stats.edges_ingested, 0, "mutations are not edges");
    }

    #[test]
    fn stats_and_snapshot_track_progress() {
        let g = barabasi_albert(GeneratorConfig::new(500, 4, 5), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Bfs);
        let mut partitioner = HashPartitioner::new(4, 200).unwrap();
        partitioner.ingest_batch(stream.elements()).unwrap();
        let stats = partitioner.stats();
        assert_eq!(stats.vertices_ingested, 500);
        assert_eq!(stats.edges_ingested, g.edge_count());
        assert_eq!(stats.batches_ingested, 1);
        assert_eq!(stats.assigned, 500);
        let snap = partitioner.snapshot();
        assert_eq!(snap.assigned_count(), 500);
        // Snapshot is non-destructive; finish then moves the result out.
        assert_eq!(partitioner.finish().unwrap().assigned_count(), 500);
        assert_eq!(partitioner.stats().assigned, 0);
    }
}
