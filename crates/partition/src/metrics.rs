//! Partition quality metrics.
//!
//! The classic, workload-agnostic measures every streaming-partitioning paper
//! reports (edge cut λ, cut ratio, imbalance ρ, communication volume), plus a
//! ground-truth agreement score for planted-partition graphs. The
//! *workload-aware* metric the paper actually optimises — inter-partition
//! traversal probability — depends on query execution and therefore lives in
//! `loom-sim`.

use crate::partition::{PartitionId, Partitioning};
use loom_graph::fxhash::FxHashSet;
use loom_graph::{LabelledGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Aggregated quality figures for a partitioning of a specific graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Number of vertices assigned.
    pub assigned_vertices: usize,
    /// Number of vertices in the graph (assigned or not).
    pub graph_vertices: usize,
    /// Number of edges whose endpoints live in different partitions.
    pub cut_edges: usize,
    /// Total number of edges considered.
    pub total_edges: usize,
    /// `cut_edges / total_edges` (0.0 for empty graphs).
    pub cut_ratio: f64,
    /// `max_i |V_i| / (n / k)` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// Total communication volume: for each vertex, the number of *distinct*
    /// remote partitions among its neighbours, summed over all vertices.
    pub communication_volume: usize,
}

impl std::fmt::Display for QualityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cut={}/{} ({:.3}) imbalance={:.3} comm_volume={}",
            self.cut_edges,
            self.total_edges,
            self.cut_ratio,
            self.imbalance,
            self.communication_volume
        )
    }
}

/// Compute partition quality metrics for a graph + partitioning pair.
///
/// Edges with an unassigned endpoint are ignored (streaming partitioners may
/// legitimately be mid-stream when quality is sampled).
pub fn evaluate(graph: &LabelledGraph, partitioning: &Partitioning) -> QualityReport {
    let mut cut_edges = 0usize;
    let mut total_edges = 0usize;
    for e in graph.edges() {
        let (Some(pa), Some(pb)) = (
            partitioning.partition_of(e.lo),
            partitioning.partition_of(e.hi),
        ) else {
            continue;
        };
        total_edges += 1;
        if pa != pb {
            cut_edges += 1;
        }
    }
    let mut communication_volume = 0usize;
    for v in graph.vertices() {
        let Some(home) = partitioning.partition_of(v) else {
            continue;
        };
        let mut remotes: FxHashSet<PartitionId> = FxHashSet::default();
        for &n in graph.neighbors(v) {
            if let Some(p) = partitioning.partition_of(n) {
                if p != home {
                    remotes.insert(p);
                }
            }
        }
        communication_volume += remotes.len();
    }
    QualityReport {
        assigned_vertices: partitioning.assigned_count(),
        graph_vertices: graph.vertex_count(),
        cut_edges,
        total_edges,
        cut_ratio: if total_edges == 0 {
            0.0
        } else {
            cut_edges as f64 / total_edges as f64
        },
        imbalance: partitioning.imbalance(),
        communication_volume,
    }
}

/// Fraction of intra-community edges that a partitioning keeps internal,
/// given the planted ground-truth membership of a community graph. 1.0 means
/// every planted community edge is uncut.
pub fn community_agreement(
    graph: &LabelledGraph,
    partitioning: &Partitioning,
    membership: &[(VertexId, usize)],
) -> f64 {
    let community_of: loom_graph::fxhash::FxHashMap<VertexId, usize> =
        membership.iter().copied().collect();
    let mut intra = 0usize;
    let mut kept = 0usize;
    for e in graph.edges() {
        let (Some(&ca), Some(&cb)) = (community_of.get(&e.lo), community_of.get(&e.hi)) else {
            continue;
        };
        if ca != cb {
            continue;
        }
        let (Some(pa), Some(pb)) = (
            partitioning.partition_of(e.lo),
            partitioning.partition_of(e.hi),
        ) else {
            continue;
        };
        intra += 1;
        if pa == pb {
            kept += 1;
        }
    }
    if intra == 0 {
        1.0
    } else {
        kept as f64 / intra as f64
    }
}

/// Convenience trait: anything that can produce a final [`Partitioning`] can
/// be evaluated against a graph.
pub trait PartitionQuality {
    /// Evaluate the quality of this partitioning on `graph`.
    fn quality(&self, graph: &LabelledGraph) -> QualityReport;
}

impl PartitionQuality for Partitioning {
    fn quality(&self, graph: &LabelledGraph) -> QualityReport {
        evaluate(graph, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;

    fn two_block_graph() -> LabelledGraph {
        // Two triangles joined by a single bridge edge.
        let mut g = LabelledGraph::new();
        let vs: Vec<VertexId> = (0..6).map(|_| g.add_vertex(Label::new(0))).collect();
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(vs[a], vs[b]).unwrap();
        }
        g
    }

    #[test]
    fn perfect_split_cuts_only_the_bridge() {
        let g = two_block_graph();
        let mut part = Partitioning::new(2, 3).unwrap();
        for i in 0..3u64 {
            part.assign(VertexId::new(i), PartitionId::new(0)).unwrap();
        }
        for i in 3..6u64 {
            part.assign(VertexId::new(i), PartitionId::new(1)).unwrap();
        }
        let report = evaluate(&g, &part);
        assert_eq!(report.cut_edges, 1);
        assert_eq!(report.total_edges, 7);
        assert!((report.cut_ratio - 1.0 / 7.0).abs() < 1e-12);
        assert!((report.imbalance - 1.0).abs() < 1e-12);
        // Only the two bridge endpoints see one remote partition each.
        assert_eq!(report.communication_volume, 2);
        assert!(report.to_string().contains("cut=1/7"));
    }

    #[test]
    fn everything_in_one_partition_has_zero_cut_but_max_imbalance() {
        let g = two_block_graph();
        let mut part = Partitioning::new(2, 6).unwrap();
        for i in 0..6u64 {
            part.assign(VertexId::new(i), PartitionId::new(0)).unwrap();
        }
        let report = evaluate(&g, &part);
        assert_eq!(report.cut_edges, 0);
        assert!((report.imbalance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_assignments_are_ignored() {
        let g = path_graph(4, &[Label::new(0)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(1)).unwrap();
        let report = evaluate(&g, &part);
        assert_eq!(report.total_edges, 1);
        assert_eq!(report.cut_edges, 1);
        assert_eq!(report.assigned_vertices, 2);
        assert_eq!(report.graph_vertices, 4);
    }

    #[test]
    fn community_agreement_scores_planted_structure() {
        let g = two_block_graph();
        let membership: Vec<(VertexId, usize)> = (0..6u64)
            .map(|i| (VertexId::new(i), if i < 3 { 0 } else { 1 }))
            .collect();
        let mut aligned = Partitioning::new(2, 3).unwrap();
        for i in 0..6u64 {
            aligned
                .assign(VertexId::new(i), PartitionId::new(u32::from(i >= 3)))
                .unwrap();
        }
        assert!((community_agreement(&g, &aligned, &membership) - 1.0).abs() < 1e-12);

        let mut scrambled = Partitioning::new(2, 3).unwrap();
        for i in 0..6u64 {
            scrambled
                .assign(VertexId::new(i), PartitionId::new((i % 2) as u32))
                .unwrap();
        }
        assert!(community_agreement(&g, &scrambled, &membership) < 0.5);
    }

    #[test]
    fn quality_trait_matches_free_function() {
        let g = two_block_graph();
        let mut part = Partitioning::new(2, 6).unwrap();
        for i in 0..6u64 {
            part.assign(VertexId::new(i), PartitionId::new((i % 2) as u32))
                .unwrap();
        }
        assert_eq!(part.quality(&g), evaluate(&g, &part));
    }

    #[test]
    fn empty_graph_reports_zeroes() {
        let g = LabelledGraph::new();
        let part = Partitioning::new(2, 1).unwrap();
        let report = evaluate(&g, &part);
        assert_eq!(report.cut_edges, 0);
        assert_eq!(report.cut_ratio, 0.0);
        assert_eq!(report.communication_volume, 0);
    }
}
