//! The streaming partitioner contract.
//!
//! A streaming partitioner consumes the elements of a [`GraphStream`] exactly
//! once, in order, and decides vertex placement "on the fly" with bounded
//! memory (paper §3.1). Every partitioner in this workspace — Hash, LDG,
//! Fennel and LOOM itself — implements [`Partitioner`], so the experiment
//! harness, benches and the top-level `loom::Session` façade can treat them
//! uniformly as `Box<dyn Partitioner>` trait objects built from a declarative
//! [`crate::spec::PartitionerSpec`].
//!
//! The contract separates three concerns that the original two-method trait
//! conflated:
//!
//! * **ingestion** — [`Partitioner::ingest`] consumes one element;
//!   [`Partitioner::ingest_batch`] consumes a chunk at once, letting
//!   implementations amortise hash-table growth and lookup costs;
//! * **observation** — [`Partitioner::snapshot`] clones the partitioning
//!   built so far without disturbing the partitioner (periodic checkpoints),
//!   and [`Partitioner::stats`] reports unified ingestion counters;
//! * **completion** — [`Partitioner::finish`] flushes buffered elements and
//!   *moves* the final partitioning out. No clone is paid; the partitioner is
//!   spent afterwards.

use crate::error::Result;
use crate::partition::Partitioning;
use loom_graph::{GraphStream, StreamElement};
use serde::{Deserialize, Serialize};

/// Default chunk size used by [`partition_stream`] when driving a stream
/// through a partitioner batch-wise.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Unified ingestion counters reported by every [`Partitioner`].
///
/// Implementations with richer internals (LOOM) expose their detailed
/// counters through inherent methods; this report is the common denominator
/// the experiment harness can rely on for any `Box<dyn Partitioner>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionerStats {
    /// Stream vertices ingested so far.
    pub vertices_ingested: usize,
    /// Stream edges ingested so far.
    pub edges_ingested: usize,
    /// Calls to [`Partitioner::ingest_batch`] served so far.
    pub batches_ingested: usize,
    /// Vertices already assigned to a partition.
    pub assigned: usize,
    /// Vertices buffered awaiting a placement decision (pending vertices,
    /// window contents, …).
    pub buffered: usize,
}

impl std::fmt::Display for PartitionerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertices={} edges={} batches={} assigned={} buffered={}",
            self.vertices_ingested,
            self.edges_ingested,
            self.batches_ingested,
            self.assigned,
            self.buffered,
        )
    }
}

/// A partitioner that consumes a graph stream and produces a [`Partitioning`].
///
/// The trait is object safe: the experiment runner, benches and the
/// `loom::Session` façade drive partitioners through `Box<dyn Partitioner>`
/// built by a [`crate::spec::PartitionerRegistry`]. `Send` is a supertrait so
/// a boxed partitioner can ingest on a background thread while the serving
/// engine keeps answering queries (the `loom-serve` ingest-while-serve
/// pattern).
pub trait Partitioner: Send {
    /// A short, stable name used in reports and benchmark output.
    fn name(&self) -> &'static str;

    /// Consume the next stream element.
    ///
    /// # Errors
    ///
    /// Implementations report configuration errors (e.g. unknown labels) and
    /// internal assignment errors; they never panic on well-formed streams.
    fn ingest(&mut self, element: &StreamElement) -> Result<()>;

    /// Consume a contiguous chunk of stream elements at once.
    ///
    /// Semantically identical to calling [`Partitioner::ingest`] on each
    /// element in order — batched and per-element ingestion MUST yield the
    /// same partitioning. Implementations override this to amortise work
    /// across the chunk (table pre-reservation, scratch-buffer reuse, batched
    /// degree/label lookups).
    ///
    /// # Errors
    ///
    /// Propagates the first per-element error.
    fn ingest_batch(&mut self, batch: &[StreamElement]) -> Result<()> {
        for element in batch {
            self.ingest(element)?;
        }
        Ok(())
    }

    /// A non-destructive copy of the partitioning built so far.
    ///
    /// Buffered vertices (a pending LDG/Fennel vertex, LOOM's window
    /// contents) have no assignment yet and are therefore *not* part of the
    /// snapshot; call [`Partitioner::finish`] for the complete result. This
    /// is the explicit clone — `finish` itself never copies.
    fn snapshot(&self) -> Partitioning;

    /// Flush any buffered elements and move the final partitioning out.
    ///
    /// The partitioner is *spent* afterwards: it keeps its configuration but
    /// starts from an empty assignment table, so further `ingest` calls begin
    /// a fresh partitioning. Use [`Partitioner::snapshot`] for periodic
    /// checkpoints instead.
    ///
    /// # Errors
    ///
    /// Propagates any assignment error encountered while flushing.
    fn finish(&mut self) -> Result<Partitioning>;

    /// Unified ingestion counters accumulated so far.
    fn stats(&self) -> PartitionerStats {
        PartitionerStats::default()
    }
}

/// Deprecated name of the [`Partitioner`] contract.
///
/// The trait was renamed when it grew batched ingestion, snapshots and the
/// unified stats report; a blanket impl keeps `P: StreamingPartitioner`
/// bounds compiling. Note the behavioural change: `finish` now *moves* the
/// final partitioning out instead of cloning it — use
/// [`Partitioner::snapshot`] where the old non-destructive `finish` was
/// relied upon.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `Partitioner`; `finish` now moves the result out — use `snapshot` for non-destructive checkpoints"
)]
pub trait StreamingPartitioner: Partitioner {}

#[allow(deprecated)]
impl<P: Partitioner + ?Sized> StreamingPartitioner for P {}

/// Drive a full stream through a partitioner and return the resulting
/// partitioning.
///
/// This is the batched driver with the default chunk size
/// ([`DEFAULT_BATCH_SIZE`]); batched and per-element ingestion are
/// contractually identical, so callers only choose a chunk size for
/// throughput (see [`partition_stream_batched`]).
///
/// # Errors
///
/// Propagates the first error returned by the partitioner.
pub fn partition_stream<P: Partitioner + ?Sized>(
    partitioner: &mut P,
    stream: &GraphStream,
) -> Result<Partitioning> {
    partition_stream_batched(partitioner, stream, DEFAULT_BATCH_SIZE)
}

/// Drive a full stream through a partitioner in chunks of `chunk_size`
/// elements and return the resulting partitioning.
///
/// `chunk_size == 1` degenerates to per-element ingestion; larger chunks let
/// implementations amortise per-element overheads. A zero chunk size is
/// treated as 1.
///
/// # Errors
///
/// Propagates the first error returned by the partitioner.
pub fn partition_stream_batched<P: Partitioner + ?Sized>(
    partitioner: &mut P,
    stream: &GraphStream,
    chunk_size: usize,
) -> Result<Partitioning> {
    for chunk in stream.elements().chunks(chunk_size.max(1)) {
        partitioner.ingest_batch(chunk)?;
    }
    partitioner.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionId;
    use loom_graph::{Label, VertexId};

    /// A trivial partitioner that sends everything to partition 0; used to
    /// exercise the driver functions and the trait defaults.
    struct Trivial {
        partitioning: Partitioning,
        stats: PartitionerStats,
    }

    impl Trivial {
        fn new() -> Self {
            Self {
                partitioning: Partitioning::new(1, 10).unwrap(),
                stats: PartitionerStats::default(),
            }
        }
    }

    impl Partitioner for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }

        fn ingest(&mut self, element: &StreamElement) -> Result<()> {
            if let StreamElement::AddVertex { id, .. } = element {
                self.stats.vertices_ingested += 1;
                self.partitioning.assign(*id, PartitionId::new(0))?;
            } else {
                self.stats.edges_ingested += 1;
            }
            Ok(())
        }

        fn snapshot(&self) -> Partitioning {
            self.partitioning.clone()
        }

        fn finish(&mut self) -> Result<Partitioning> {
            Ok(self.partitioning.take())
        }

        fn stats(&self) -> PartitionerStats {
            PartitionerStats {
                assigned: self.partitioning.assigned_count(),
                ..self.stats
            }
        }
    }

    fn five_vertex_stream() -> GraphStream {
        let mut stream = GraphStream::new();
        for i in 0..5u64 {
            stream.push(StreamElement::AddVertex {
                id: VertexId::new(i),
                label: Label::new(0),
            });
        }
        stream.push(StreamElement::AddEdge {
            source: VertexId::new(0),
            target: VertexId::new(1),
        });
        stream
    }

    #[test]
    fn driver_feeds_every_element() {
        let stream = five_vertex_stream();
        let mut partitioner = Trivial::new();
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(result.assigned_count(), 5);
        assert_eq!(partitioner.name(), "trivial");
        // `finish` moved the result out: the partitioner starts afresh.
        assert_eq!(partitioner.snapshot().assigned_count(), 0);
    }

    #[test]
    fn batched_and_per_element_ingestion_agree() {
        let stream = five_vertex_stream();
        for chunk_size in [0usize, 1, 2, 3, 100] {
            let mut partitioner = Trivial::new();
            let result = partition_stream_batched(&mut partitioner, &stream, chunk_size).unwrap();
            assert_eq!(result.assigned_count(), 5, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let stream = five_vertex_stream();
        let mut partitioner = Trivial::new();
        partitioner.ingest_batch(stream.elements()).unwrap();
        let snap = partitioner.snapshot();
        assert_eq!(snap.assigned_count(), 5);
        // Snapshot did not disturb the partitioner.
        let finished = partitioner.finish().unwrap();
        assert_eq!(finished.assigned_count(), 5);
    }

    #[test]
    fn stats_report_counts() {
        let stream = five_vertex_stream();
        let mut partitioner = Trivial::new();
        partitioner.ingest_batch(stream.elements()).unwrap();
        let stats = partitioner.stats();
        assert_eq!(stats.vertices_ingested, 5);
        assert_eq!(stats.edges_ingested, 1);
        assert_eq!(stats.assigned, 5);
        assert!(stats.to_string().contains("vertices=5"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_names_every_partitioner() {
        fn takes_old_name<P: StreamingPartitioner>(p: &P) -> &'static str {
            p.name()
        }
        let partitioner = Trivial::new();
        assert_eq!(takes_old_name(&partitioner), "trivial");
    }
}
