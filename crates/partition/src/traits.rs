//! The streaming partitioner contract.
//!
//! A streaming partitioner consumes the elements of a [`GraphStream`] exactly
//! once, in order, and decides vertex placement "on the fly" with bounded
//! memory (paper §3.1). Every partitioner in this workspace — Hash, LDG,
//! Fennel and LOOM itself — implements [`StreamingPartitioner`], so the
//! experiment harness can treat them uniformly.

use crate::error::Result;
use crate::partition::Partitioning;
use loom_graph::{GraphStream, StreamElement};

/// A partitioner that consumes a graph stream element by element.
pub trait StreamingPartitioner {
    /// A short, stable name used in reports and benchmark output.
    fn name(&self) -> &'static str;

    /// Consume the next stream element.
    ///
    /// # Errors
    ///
    /// Implementations report configuration errors (e.g. unknown labels) and
    /// internal assignment errors; they never panic on well-formed streams.
    fn ingest(&mut self, element: &StreamElement) -> Result<()>;

    /// Flush any buffered elements and return the final partitioning.
    ///
    /// Implementations should leave themselves in a state where further
    /// `ingest` calls continue from the flushed state (useful for periodic
    /// snapshots), but callers typically call this exactly once.
    ///
    /// # Errors
    ///
    /// Propagates any assignment error encountered while flushing.
    fn finish(&mut self) -> Result<Partitioning>;
}

/// Drive a full stream through a partitioner and return the resulting
/// partitioning.
///
/// # Errors
///
/// Propagates the first error returned by the partitioner.
pub fn partition_stream<P: StreamingPartitioner + ?Sized>(
    partitioner: &mut P,
    stream: &GraphStream,
) -> Result<Partitioning> {
    for element in stream {
        partitioner.ingest(element)?;
    }
    partitioner.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionId;
    use loom_graph::{Label, VertexId};

    /// A trivial partitioner that sends everything to partition 0; used to
    /// exercise the driver function.
    struct Trivial {
        partitioning: Partitioning,
    }

    impl StreamingPartitioner for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }

        fn ingest(&mut self, element: &StreamElement) -> Result<()> {
            if let StreamElement::AddVertex { id, .. } = element {
                self.partitioning.assign(*id, PartitionId::new(0))?;
            }
            Ok(())
        }

        fn finish(&mut self) -> Result<Partitioning> {
            Ok(self.partitioning.clone())
        }
    }

    #[test]
    fn driver_feeds_every_element() {
        let mut stream = GraphStream::new();
        for i in 0..5u64 {
            stream.push(StreamElement::AddVertex {
                id: VertexId::new(i),
                label: Label::new(0),
            });
        }
        stream.push(StreamElement::AddEdge {
            source: VertexId::new(0),
            target: VertexId::new(1),
        });
        let mut partitioner = Trivial {
            partitioning: Partitioning::new(1, 10).unwrap(),
        };
        let result = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(result.assigned_count(), 5);
        assert_eq!(partitioner.name(), "trivial");
    }
}
