//! Offline multilevel k-way partitioning (METIS-like).
//!
//! The paper positions streaming partitioners against METIS, the standard
//! offline baseline: highest quality, but memory hungry and requiring a full
//! repartition whenever the graph changes. This module implements the same
//! three-phase multilevel scheme so the experiments have a quality reference
//! point:
//!
//! 1. **Coarsening** — repeatedly contract a heavy-edge matching until the
//!    graph is small;
//! 2. **Initial partitioning** — greedy region growing on the coarsest graph,
//!    respecting vertex weights;
//! 3. **Uncoarsening + refinement** — project the partitioning back level by
//!    level, applying a bounded Kernighan–Lin/FM-style boundary-move pass at
//!    each level.
//!
//! The implementation favours clarity over squeezing out the last few percent
//! of cut quality; it comfortably beats every streaming heuristic on edge
//! cut, which is all the experiments need from it.

use crate::error::{PartitionError, Result};
use crate::partition::{PartitionId, Partitioning};
use loom_graph::fxhash::FxHashMap;
use loom_graph::{LabelledGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the multilevel partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultilevelConfig {
    /// Number of partitions.
    pub k: u32,
    /// Balance slack: no partition may exceed `slack · n / k` total vertex
    /// weight.
    pub slack: f64,
    /// Stop coarsening once the graph has at most `max(coarsen_until, 4k)`
    /// vertices.
    pub coarsen_until: usize,
    /// Number of refinement sweeps per uncoarsening level.
    pub refinement_passes: usize,
    /// RNG seed for the matching order.
    pub seed: u64,
}

impl MultilevelConfig {
    /// Sensible defaults for `k` partitions.
    pub fn new(k: u32) -> Self {
        Self {
            k,
            slack: 1.05,
            coarsen_until: 128,
            refinement_passes: 4,
            seed: 42,
        }
    }
}

/// The offline multilevel partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

/// Internal weighted graph representation used across coarsening levels.
/// Vertices are dense `0..n` indices.
#[derive(Debug, Clone)]
struct Level {
    /// Weight (number of original vertices) of each coarse vertex.
    vertex_weight: Vec<u64>,
    /// Adjacency: for each vertex, `(neighbour, edge_weight)` pairs.
    adjacency: Vec<Vec<(u32, u64)>>,
    /// Mapping from this level's vertices to the coarser level's vertices
    /// (filled in when the next level is built).
    coarse_of: Vec<u32>,
}

impl Level {
    fn vertex_count(&self) -> usize {
        self.vertex_weight.len()
    }
}

impl MultilevelPartitioner {
    /// Create a partitioner with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for `k == 0` or slack < 1.
    pub fn new(config: MultilevelConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        if config.slack < 1.0 || config.slack.is_nan() {
            return Err(PartitionError::InvalidConfig(format!(
                "slack must be >= 1.0, got {}",
                config.slack
            )));
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    /// Partition a whole graph offline.
    ///
    /// # Errors
    ///
    /// Propagates assignment errors (which indicate a bug rather than a user
    /// error) and configuration problems.
    pub fn partition(&self, graph: &LabelledGraph) -> Result<Partitioning> {
        let k = self.config.k;
        let n = graph.vertex_count();
        let mut partitioning = Partitioning::with_slack(k, n.max(1), self.config.slack.max(1.1))?;
        if n == 0 {
            return Ok(partitioning);
        }

        // Dense index mapping for the finest level.
        let ids = graph.vertices_sorted();
        let index_of: FxHashMap<VertexId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut finest = Level {
            vertex_weight: vec![1; n],
            adjacency: vec![Vec::new(); n],
            coarse_of: vec![0; n],
        };
        for e in graph.edges() {
            let a = index_of[&e.lo] as usize;
            let b = index_of[&e.hi] as usize;
            finest.adjacency[a].push((b as u32, 1));
            finest.adjacency[b].push((a as u32, 1));
        }

        // Phase 1: coarsen. Cap the weight a coarse vertex may accumulate so
        // that a tightly connected component cannot collapse into a single
        // super-vertex heavier than a partition's balance target (which would
        // make balanced initial partitioning impossible).
        let mut levels = vec![finest];
        let stop_at = self.config.coarsen_until.max(4 * k as usize);
        let max_coarse_weight = ((n as f64 / f64::from(k) / 4.0).floor() as u64).max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        loop {
            let current = levels.last().unwrap();
            if current.vertex_count() <= stop_at {
                break;
            }
            let (coarse, mapping) = coarsen(current, max_coarse_weight, &mut rng);
            let shrunk = coarse.vertex_count() < current.vertex_count();
            levels.last_mut().unwrap().coarse_of = mapping;
            if !shrunk {
                break;
            }
            levels.push(coarse);
        }

        // Phase 2: initial partition of the coarsest level.
        let total_weight: u64 = levels.last().unwrap().vertex_weight.iter().sum();
        let target = (total_weight as f64 / f64::from(k) * self.config.slack).ceil() as u64;
        let mut assignment = initial_partition(levels.last().unwrap(), k, target, &mut rng);

        // Phase 3: uncoarsen + refine; finish with an explicit rebalance pass
        // at the finest level (unit vertex weights) so any overload left over
        // from the coarse initial partitioning is repaired.
        refine(
            levels.last().unwrap(),
            &mut assignment,
            k,
            target,
            self.config.refinement_passes,
        );
        for level_index in (0..levels.len() - 1).rev() {
            let fine = &levels[level_index];
            let mut fine_assignment = vec![0u32; fine.vertex_count()];
            for (v, slot) in fine_assignment.iter_mut().enumerate() {
                *slot = assignment[fine.coarse_of[v] as usize];
            }
            assignment = fine_assignment;
            refine(
                fine,
                &mut assignment,
                k,
                target,
                self.config.refinement_passes,
            );
        }
        rebalance(&levels[0], &mut assignment, k, target);
        refine(&levels[0], &mut assignment, k, target, 1);

        for (i, &p) in assignment.iter().enumerate() {
            partitioning.assign(ids[i], PartitionId::new(p))?;
        }
        Ok(partitioning)
    }
}

/// Contract a heavy-edge matching: visit vertices in random order, match each
/// unmatched vertex with its unmatched neighbour of maximum edge weight,
/// skipping partners whose combined weight would exceed `max_weight`.
fn coarsen(level: &Level, max_weight: u64, rng: &mut StdRng) -> (Level, Vec<u32>) {
    let n = level.vertex_count();
    let mut visit_order: Vec<u32> = (0..n as u32).collect();
    visit_order.shuffle(rng);

    let mut matched = vec![false; n];
    let mut coarse_of = vec![u32::MAX; n];
    let mut coarse_count = 0u32;

    for &v in &visit_order {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        // Heaviest unmatched neighbour whose merge stays under the weight cap.
        let partner = level.adjacency[v]
            .iter()
            .filter(|&&(n, _)| {
                !matched[n as usize]
                    && level.vertex_weight[v] + level.vertex_weight[n as usize] <= max_weight
            })
            .max_by_key(|&&(_, w)| w)
            .map(|&(n, _)| n as usize);
        matched[v] = true;
        coarse_of[v] = coarse_count;
        if let Some(p) = partner {
            matched[p] = true;
            coarse_of[p] = coarse_count;
        }
        coarse_count += 1;
    }

    // Build the coarse level.
    let mut vertex_weight = vec![0u64; coarse_count as usize];
    for v in 0..n {
        vertex_weight[coarse_of[v] as usize] += level.vertex_weight[v];
    }
    let mut edge_weights: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    for v in 0..n {
        let cv = coarse_of[v];
        for &(u, w) in &level.adjacency[v] {
            let cu = coarse_of[u as usize];
            if cv == cu {
                continue;
            }
            let key = if cv < cu { (cv, cu) } else { (cu, cv) };
            // Each undirected edge is seen twice (once per endpoint); halve at the end.
            *edge_weights.entry(key).or_insert(0) += w;
        }
    }
    let mut adjacency = vec![Vec::new(); coarse_count as usize];
    for (&(a, b), &w) in &edge_weights {
        let w = w / 2;
        adjacency[a as usize].push((b, w));
        adjacency[b as usize].push((a, w));
    }
    (
        Level {
            vertex_weight,
            adjacency,
            coarse_of: vec![0; coarse_count as usize],
        },
        coarse_of,
    )
}

/// Number of random restarts of the initial partitioning; the coarsest graph
/// is small, so trying several seeds and keeping the best cut is cheap.
const INITIAL_PARTITION_RESTARTS: usize = 8;

/// Weight of the edges `assignment` cuts at this level.
fn level_cut_weight(level: &Level, assignment: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..level.vertex_count() {
        for &(u, w) in &level.adjacency[v] {
            if (u as usize) > v && assignment[v] != assignment[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Greedy region-growing initial partitioning on the coarsest level: several
/// random restarts, keeping the assignment with the smallest cut.
fn initial_partition(level: &Level, k: u32, target: u64, rng: &mut StdRng) -> Vec<u32> {
    let mut best: Option<(u64, Vec<u32>)> = None;
    for _ in 0..INITIAL_PARTITION_RESTARTS {
        let assignment = region_grow(level, k, target, rng);
        let cut = level_cut_weight(level, &assignment);
        if best.as_ref().is_none_or(|(best_cut, _)| cut < *best_cut) {
            best = Some((cut, assignment));
        }
    }
    best.expect("at least one restart").1
}

/// One region-growing pass: visit vertices in random order and place each in
/// the partition it is most connected to, discounted multiplicatively by how
/// full that partition already is (the LDG score). The multiplicative penalty
/// matters: with an additive one, every early zero-connectivity vertex lands
/// in the same partition, which then snowballs into a community-blind blob.
fn region_grow(level: &Level, k: u32, target: u64, rng: &mut StdRng) -> Vec<u32> {
    let n = level.vertex_count();
    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; k as usize];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &v in &order {
        let v = v as usize;
        if assignment[v] != u32::MAX {
            continue;
        }
        let mut best = 0u32;
        let mut best_score = f64::MIN;
        for p in 0..k {
            let connectivity: u64 = level.adjacency[v]
                .iter()
                .filter(|&&(u, _)| assignment[u as usize] == p)
                .map(|&(_, w)| w)
                .sum();
            let fill = loads[p as usize] as f64 / target.max(1) as f64;
            let has_room = loads[p as usize] + level.vertex_weight[v] <= target;
            // Floor the discount at zero: past the target it must stop
            // rewarding, not start treating connectivity as a penalty.
            let score = connectivity as f64 * (1.0 - fill).max(0.0) - fill
                + if has_room { 0.0 } else { -1e12 };
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        assignment[v] = best;
        loads[best as usize] += level.vertex_weight[v];
    }
    assignment
}

/// Bounded FM-style refinement: repeatedly move boundary vertices to the
/// partition where they gain the most cut weight, respecting the balance
/// target.
fn refine(level: &Level, assignment: &mut [u32], k: u32, target: u64, passes: usize) {
    let n = level.vertex_count();
    let mut loads = vec![0u64; k as usize];
    for v in 0..n {
        loads[assignment[v] as usize] += level.vertex_weight[v];
    }
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let home = assignment[v];
            // Connectivity to each partition.
            let mut connectivity = vec![0u64; k as usize];
            for &(u, w) in &level.adjacency[v] {
                connectivity[assignment[u as usize] as usize] += w;
            }
            let internal = connectivity[home as usize];
            let weight = level.vertex_weight[v];
            let mut best_target = home;
            let mut best_gain = 0i64;
            for p in 0..k {
                if p == home {
                    continue;
                }
                if loads[p as usize] + weight > target {
                    continue;
                }
                let gain = connectivity[p as usize] as i64 - internal as i64;
                if gain > best_gain {
                    best_gain = gain;
                    best_target = p;
                }
            }
            if best_target != home {
                assignment[v] = best_target;
                loads[home as usize] -= weight;
                loads[best_target as usize] += weight;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Move vertices out of partitions that exceed the balance target, preferring
/// the vertices whose removal loses the least internal edge weight and the
/// destination with the most connectivity among those with room.
fn rebalance(level: &Level, assignment: &mut [u32], k: u32, target: u64) {
    let n = level.vertex_count();
    let mut loads = vec![0u64; k as usize];
    for v in 0..n {
        loads[assignment[v] as usize] += level.vertex_weight[v];
    }
    for p in 0..k {
        while loads[p as usize] > target {
            // Cheapest vertex to evict from p: least internal connectivity.
            let candidate = (0..n).filter(|&v| assignment[v] == p).min_by_key(|&v| {
                level.adjacency[v]
                    .iter()
                    .filter(|&&(u, _)| assignment[u as usize] == p)
                    .map(|&(_, w)| w)
                    .sum::<u64>()
            });
            let Some(v) = candidate else {
                break;
            };
            let weight = level.vertex_weight[v];
            // Best destination with room: most connectivity to it.
            let destination = (0..k)
                .filter(|&q| q != p && loads[q as usize] + weight <= target)
                .max_by_key(|&q| {
                    level.adjacency[v]
                        .iter()
                        .filter(|&&(u, _)| assignment[u as usize] == q)
                        .map(|&(_, w)| w)
                        .sum::<u64>()
                });
            let Some(q) = destination else {
                break; // nowhere has room; give up rather than loop forever
            };
            assignment[v] = q;
            loads[p as usize] -= weight;
            loads[q as usize] += weight;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::traits::partition_stream;
    use loom_graph::generators::{
        barabasi_albert, community_graph, grid_graph, CommunityConfig, GeneratorConfig,
    };
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;

    #[test]
    fn configuration_is_validated() {
        assert!(MultilevelPartitioner::new(MultilevelConfig {
            k: 0,
            ..MultilevelConfig::new(4)
        })
        .is_err());
        assert!(MultilevelPartitioner::new(MultilevelConfig {
            slack: 0.5,
            ..MultilevelConfig::new(4)
        })
        .is_err());
    }

    #[test]
    fn partitions_every_vertex_with_bounded_imbalance() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 3), 2).unwrap();
        let partitioner = MultilevelPartitioner::new(MultilevelConfig::new(8)).unwrap();
        let part = partitioner.partition(&g).unwrap();
        assert_eq!(part.assigned_count(), 2_000);
        assert!(part.imbalance() < 1.25, "imbalance {}", part.imbalance());
    }

    #[test]
    fn beats_ldg_on_edge_cut_for_community_graphs() {
        let (g, _) = community_graph(CommunityConfig {
            vertices: 600,
            communities: 4,
            p_in: 0.1,
            p_out: 0.005,
            label_count: 4,
            seed: 5,
        })
        .unwrap();
        let offline = MultilevelPartitioner::new(MultilevelConfig::new(4))
            .unwrap()
            .partition(&g)
            .unwrap();
        let streaming = {
            let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 9 });
            let mut ldg =
                crate::ldg::LdgPartitioner::new(crate::ldg::LdgConfig::new(4, g.vertex_count()))
                    .unwrap();
            partition_stream(&mut ldg, &stream).unwrap()
        };
        let offline_cut = evaluate(&g, &offline).cut_ratio;
        let streaming_cut = evaluate(&g, &streaming).cut_ratio;
        assert!(
            offline_cut <= streaming_cut + 0.02,
            "offline {offline_cut:.3} should not lose to random-order LDG {streaming_cut:.3}"
        );
    }

    #[test]
    fn grid_cut_is_far_from_worst_case() {
        let g = grid_graph(30, 30, 2, 1).unwrap();
        let part = MultilevelPartitioner::new(MultilevelConfig::new(4))
            .unwrap()
            .partition(&g)
            .unwrap();
        let report = evaluate(&g, &part);
        // A random 4-way split cuts 75% of edges; a decent multilevel split
        // of a 30x30 grid should cut well under 20%.
        assert!(report.cut_ratio < 0.2, "cut ratio {}", report.cut_ratio);
    }

    #[test]
    fn sparse_graphs_with_isolated_vertices_stay_balanced() {
        // A very sparse "community" graph: a giant-ish component plus many
        // isolated vertices. Without the coarse-vertex weight cap the
        // connected part collapses into super-vertices heavier than a
        // partition and the balance explodes.
        let (g, _) = community_graph(CommunityConfig {
            vertices: 2_000,
            communities: 8,
            p_in: 0.006,
            p_out: 0.0005,
            label_count: 4,
            seed: 23,
        })
        .unwrap();
        for k in [4u32, 8] {
            let part = MultilevelPartitioner::new(MultilevelConfig::new(k))
                .unwrap()
                .partition(&g)
                .unwrap();
            assert_eq!(part.assigned_count(), g.vertex_count());
            assert!(
                part.imbalance() < 1.3,
                "k={k}: imbalance {} too high",
                part.imbalance()
            );
        }
    }

    #[test]
    fn tiny_and_empty_graphs() {
        let partitioner = MultilevelPartitioner::new(MultilevelConfig::new(4)).unwrap();
        let empty = LabelledGraph::new();
        assert_eq!(partitioner.partition(&empty).unwrap().assigned_count(), 0);
        let mut tiny = LabelledGraph::new();
        for _ in 0..3 {
            tiny.add_vertex(loom_graph::Label::new(0));
        }
        let part = partitioner.partition(&tiny).unwrap();
        assert_eq!(part.assigned_count(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = barabasi_albert(GeneratorConfig::new(500, 4, 7), 2).unwrap();
        let p1 = MultilevelPartitioner::new(MultilevelConfig::new(4))
            .unwrap()
            .partition(&g)
            .unwrap();
        let p2 = MultilevelPartitioner::new(MultilevelConfig::new(4))
            .unwrap()
            .partition(&g)
            .unwrap();
        for v in g.vertices_sorted() {
            assert_eq!(p1.partition_of(v), p2.partition_of(v));
        }
    }
}
