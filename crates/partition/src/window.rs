//! A sliding buffer over a graph stream.
//!
//! LOOM "buffers a sliding window over a graph-stream, and uses LDG to assign
//! both connected sub-graphs and single vertices from the buffer to
//! partitions" (paper §4.1). [`StreamWindow`] is that buffer: it holds up to
//! `capacity` vertices in arrival order together with
//!
//! * the edges *inside* the window (needed to grow candidate motif matches),
//! * the edges from window vertices to already-evicted vertices (needed by
//!   the LDG score at assignment time).
//!
//! Eviction is oldest-first by default; the motif-aware assigner can also
//! remove an arbitrary set of vertices at once when a whole motif match is
//! assigned together.

use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, VertexId};
use std::collections::VecDeque;

/// Where the endpoints of an incoming edge currently live, from the window's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgePlacement {
    /// Both endpoints are buffered in the window.
    BothInWindow,
    /// Exactly one endpoint is in the window; the other has left it already.
    OneInWindow {
        /// The endpoint still in the window.
        inside: VertexId,
        /// The endpoint that has already been evicted (or was never seen).
        outside: VertexId,
    },
    /// Neither endpoint is in the window.
    NeitherInWindow,
}

/// A vertex leaving the window, together with everything the assigner needs.
#[derive(Debug, Clone)]
pub struct EvictedVertex {
    /// The vertex id.
    pub id: VertexId,
    /// Its label.
    pub label: Label,
    /// Neighbours that are still inside the window.
    pub window_neighbours: Vec<VertexId>,
    /// Neighbours that already left the window (and are therefore assigned,
    /// or at least known to the partitioner).
    pub external_neighbours: Vec<VertexId>,
}

/// The sliding window buffer.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    capacity: usize,
    order: VecDeque<VertexId>,
    labels: FxHashMap<VertexId, Label>,
    /// Adjacency restricted to window members.
    window_adj: FxHashMap<VertexId, Vec<VertexId>>,
    /// Adjacency from window members to evicted vertices.
    external_adj: FxHashMap<VertexId, Vec<VertexId>>,
    /// Reverse of `external_adj`: for each *outside* vertex, the window
    /// members listing it as an external neighbour (one entry per edge
    /// occurrence). Kept so a vertex re-entering the window after eviction
    /// can reclaim its edges as window edges in O(degree) instead of leaving
    /// stale external entries behind — those would double-count the edge in
    /// the LDG score once the re-entered vertex is evicted again.
    external_rev: FxHashMap<VertexId, Vec<VertexId>>,
}

impl StreamWindow {
    /// Create a window holding at most `capacity` vertices (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            labels: FxHashMap::default(),
            window_adj: FxHashMap::default(),
            external_adj: FxHashMap::default(),
            external_rev: FxHashMap::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of vertices currently buffered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether the window is at (or beyond) capacity, i.e. the next vertex
    /// push should be preceded by an eviction.
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity
    }

    /// Whether a vertex is currently buffered.
    pub fn contains(&self, v: VertexId) -> bool {
        self.labels.contains_key(&v)
    }

    /// The label of a buffered vertex.
    pub fn label_of(&self, v: VertexId) -> Option<Label> {
        self.labels.get(&v).copied()
    }

    /// The oldest buffered vertex (next eviction candidate).
    pub fn oldest(&self) -> Option<VertexId> {
        self.order.front().copied()
    }

    /// Buffered vertices in arrival order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.order.iter().copied()
    }

    /// Neighbours of `v` inside the window.
    pub fn window_neighbours(&self, v: VertexId) -> &[VertexId] {
        self.window_adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Neighbours of `v` that already left the window.
    pub fn external_neighbours(&self, v: VertexId) -> &[VertexId] {
        self.external_adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Buffer a new vertex. The caller is responsible for evicting first if
    /// the window [`is_full`](StreamWindow::is_full).
    ///
    /// A vertex that re-enters the window after a previous eviction reclaims
    /// the edges it left behind: every remaining member that recorded it as an
    /// *external* neighbour flips that edge back to a window edge, so the edge
    /// is never counted twice (once as external, once as window) by a later
    /// eviction's LDG score.
    pub fn push_vertex(&mut self, id: VertexId, label: Label) {
        if self.labels.insert(id, label).is_none() {
            self.order.push_back(id);
            self.window_adj.entry(id).or_default();
            self.external_adj.entry(id).or_default();
            if let Some(members) = self.external_rev.remove(&id) {
                for n in members {
                    if let Some(ext) = self.external_adj.get_mut(&n) {
                        if let Some(pos) = ext.iter().position(|&u| u == id) {
                            ext.swap_remove(pos);
                        }
                    }
                    self.window_adj.entry(n).or_default().push(id);
                    self.window_adj.entry(id).or_default().push(n);
                }
            }
        }
    }

    /// Record an incoming edge and report where its endpoints live.
    pub fn push_edge(&mut self, a: VertexId, b: VertexId) -> EdgePlacement {
        let a_in = self.contains(a);
        let b_in = self.contains(b);
        match (a_in, b_in) {
            (true, true) => {
                self.window_adj.entry(a).or_default().push(b);
                self.window_adj.entry(b).or_default().push(a);
                EdgePlacement::BothInWindow
            }
            (true, false) => {
                self.external_adj.entry(a).or_default().push(b);
                self.external_rev.entry(b).or_default().push(a);
                EdgePlacement::OneInWindow {
                    inside: a,
                    outside: b,
                }
            }
            (false, true) => {
                self.external_adj.entry(b).or_default().push(a);
                self.external_rev.entry(a).or_default().push(b);
                EdgePlacement::OneInWindow {
                    inside: b,
                    outside: a,
                }
            }
            (false, false) => EdgePlacement::NeitherInWindow,
        }
    }

    /// Evict the oldest vertex (if any).
    pub fn evict_oldest(&mut self) -> Option<EvictedVertex> {
        let id = self.order.front().copied()?;
        self.remove(id)
    }

    /// Remove an arbitrary buffered vertex, fixing up the adjacency of the
    /// remaining window members (its window edges become their external
    /// edges).
    pub fn remove(&mut self, id: VertexId) -> Option<EvictedVertex> {
        let label = self.labels.remove(&id)?;
        self.order.retain(|&v| v != id);
        let window_neighbours = self.window_adj.remove(&id).unwrap_or_default();
        let external_neighbours = self.external_adj.remove(&id).unwrap_or_default();
        // The removed vertex's external edges leave the window's bookkeeping
        // entirely: drop the matching reverse entries so the index stays
        // bounded by the window's current external edges.
        for &u in &external_neighbours {
            if let Some(rev) = self.external_rev.get_mut(&u) {
                if let Some(pos) = rev.iter().position(|&m| m == id) {
                    rev.swap_remove(pos);
                }
                if rev.is_empty() {
                    self.external_rev.remove(&u);
                }
            }
        }
        for &n in &window_neighbours {
            if let Some(adj) = self.window_adj.get_mut(&n) {
                adj.retain(|&u| u != id);
            }
            self.external_adj.entry(n).or_default().push(id);
            self.external_rev.entry(id).or_default().push(n);
        }
        Some(EvictedVertex {
            id,
            label,
            window_neighbours,
            external_neighbours,
        })
    }

    /// **Delete** a vertex from the stream — as opposed to
    /// [`StreamWindow::remove`], which is an *eviction* (the vertex leaves
    /// the buffer but stays in the graph, so its window edges become the
    /// remaining members' external edges). Deletion drops the vertex and
    /// every edge it carries from the window's bookkeeping entirely,
    /// reclaiming its capacity slot. Works for both buffered vertices and
    /// already-evicted ones that window members still hold external edges to.
    /// Returns `true` if anything was dropped.
    pub fn delete(&mut self, id: VertexId) -> bool {
        if self.labels.remove(&id).is_some() {
            // Buffered: drop the vertex, its window edges and its external
            // edges without handing anything to the remaining members.
            self.order.retain(|&v| v != id);
            let window_neighbours = self.window_adj.remove(&id).unwrap_or_default();
            let external_neighbours = self.external_adj.remove(&id).unwrap_or_default();
            for &u in &external_neighbours {
                if let Some(rev) = self.external_rev.get_mut(&u) {
                    if let Some(pos) = rev.iter().position(|&m| m == id) {
                        rev.swap_remove(pos);
                    }
                    if rev.is_empty() {
                        self.external_rev.remove(&u);
                    }
                }
            }
            for &n in &window_neighbours {
                if let Some(adj) = self.window_adj.get_mut(&n) {
                    adj.retain(|&u| u != id);
                }
            }
            true
        } else if let Some(members) = self.external_rev.remove(&id) {
            // Already evicted: the members' external edges to it vanish, so
            // later LDG scores stop counting edges into a dead vertex.
            for n in members {
                if let Some(ext) = self.external_adj.get_mut(&n) {
                    if let Some(pos) = ext.iter().position(|&u| u == id) {
                        ext.swap_remove(pos);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Delete one edge from the window's bookkeeping (both-in-window,
    /// window-to-external, or absent). Returns `true` if an edge occurrence
    /// was dropped.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        match (self.contains(a), self.contains(b)) {
            (true, true) => {
                let mut removed = false;
                if let Some(adj) = self.window_adj.get_mut(&a) {
                    if let Some(pos) = adj.iter().position(|&u| u == b) {
                        adj.swap_remove(pos);
                        removed = true;
                    }
                }
                if let Some(adj) = self.window_adj.get_mut(&b) {
                    if let Some(pos) = adj.iter().position(|&u| u == a) {
                        adj.swap_remove(pos);
                    }
                }
                removed
            }
            (true, false) => self.remove_external_edge(a, b),
            (false, true) => self.remove_external_edge(b, a),
            (false, false) => false,
        }
    }

    fn remove_external_edge(&mut self, inside: VertexId, outside: VertexId) -> bool {
        let Some(ext) = self.external_adj.get_mut(&inside) else {
            return false;
        };
        let Some(pos) = ext.iter().position(|&u| u == outside) else {
            return false;
        };
        ext.swap_remove(pos);
        if let Some(rev) = self.external_rev.get_mut(&outside) {
            if let Some(p) = rev.iter().position(|&m| m == inside) {
                rev.swap_remove(p);
            }
            if rev.is_empty() {
                self.external_rev.remove(&outside);
            }
        }
        true
    }

    /// Change a buffered vertex's label in place. Returns `true` if the
    /// vertex was buffered.
    pub fn relabel(&mut self, id: VertexId, label: Label) -> bool {
        match self.labels.get_mut(&id) {
            Some(slot) => {
                *slot = label;
                true
            }
            None => false,
        }
    }

    /// Drain the whole window in arrival order (used at end of stream).
    pub fn drain(&mut self) -> Vec<EvictedVertex> {
        let mut evicted = Vec::with_capacity(self.order.len());
        while let Some(e) = self.evict_oldest() {
            evicted.push(e);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId::new(x)
    }

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn push_and_capacity_accounting() {
        let mut w = StreamWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        assert!(!w.is_full());
        w.push_vertex(v(3), l(2));
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert_eq!(w.oldest(), Some(v(1)));
        assert_eq!(w.label_of(v(2)), Some(l(1)));
        assert!(w.contains(v(3)));
        assert!(!w.contains(v(9)));
        // Duplicate pushes are ignored.
        w.push_vertex(v(1), l(0));
        assert_eq!(w.len(), 3);
        // Zero capacity is clamped.
        assert_eq!(StreamWindow::new(0).capacity(), 1);
    }

    #[test]
    fn edge_placement_classification() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        assert_eq!(w.push_edge(v(1), v(2)), EdgePlacement::BothInWindow);
        assert_eq!(
            w.push_edge(v(2), v(99)),
            EdgePlacement::OneInWindow {
                inside: v(2),
                outside: v(99)
            }
        );
        assert_eq!(w.push_edge(v(50), v(99)), EdgePlacement::NeitherInWindow);
        assert_eq!(w.window_neighbours(v(1)), &[v(2)]);
        assert_eq!(w.external_neighbours(v(2)), &[v(99)]);
    }

    #[test]
    fn eviction_moves_window_edges_to_external() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        w.push_vertex(v(3), l(2));
        w.push_edge(v(1), v(2));
        w.push_edge(v(2), v(3));
        let evicted = w.evict_oldest().unwrap();
        assert_eq!(evicted.id, v(1));
        assert_eq!(evicted.label, l(0));
        assert_eq!(evicted.window_neighbours, vec![v(2)]);
        assert!(evicted.external_neighbours.is_empty());
        // Vertex 2 now sees vertex 1 as an external neighbour.
        assert_eq!(w.external_neighbours(v(2)), &[v(1)]);
        assert_eq!(w.window_neighbours(v(2)), &[v(3)]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn arbitrary_removal_and_drain() {
        let mut w = StreamWindow::new(5);
        for i in 1..=4 {
            w.push_vertex(v(i), l(0));
        }
        w.push_edge(v(1), v(3));
        let removed = w.remove(v(3)).unwrap();
        assert_eq!(removed.id, v(3));
        assert_eq!(removed.window_neighbours, vec![v(1)]);
        assert_eq!(w.external_neighbours(v(1)), &[v(3)]);
        assert!(w.remove(v(3)).is_none());

        let drained = w.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].id, v(1));
        assert!(w.is_empty());
    }

    #[test]
    fn reentry_after_eviction_does_not_double_count_edges() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        w.push_edge(v(1), v(2));
        let evicted = w.remove(v(1)).unwrap();
        assert_eq!(evicted.window_neighbours, vec![v(2)]);
        assert_eq!(w.external_neighbours(v(2)), &[v(1)]);

        // Vertex 1 re-enters the window: the 1–2 edge must flip back to a
        // window edge instead of ALSO surviving as vertex 2's external edge
        // (which would double-count it in the LDG score at 2's eviction).
        w.push_vertex(v(1), l(0));
        assert!(w.external_neighbours(v(2)).is_empty());
        assert_eq!(w.window_neighbours(v(2)), &[v(1)]);
        assert_eq!(w.window_neighbours(v(1)), &[v(2)]);

        let evicted = w.remove(v(2)).unwrap();
        assert_eq!(evicted.window_neighbours, vec![v(1)]);
        assert!(
            evicted.external_neighbours.is_empty(),
            "window→evicted edge was double-counted on re-entry"
        );
        // And the re-entered vertex now sees 2 as external, exactly once.
        assert_eq!(w.external_neighbours(v(1)), &[v(2)]);
    }

    #[test]
    fn reentry_with_multiple_window_neighbours_reclaims_every_edge() {
        let mut w = StreamWindow::new(8);
        for i in 1..=4 {
            w.push_vertex(v(i), l(0));
        }
        w.push_edge(v(1), v(2));
        w.push_edge(v(1), v(3));
        w.push_edge(v(1), v(4));
        w.remove(v(1)).unwrap();
        for i in 2..=4 {
            assert_eq!(w.external_neighbours(v(i)), &[v(1)]);
        }
        w.push_vertex(v(1), l(0));
        for i in 2..=4 {
            assert!(w.external_neighbours(v(i)).is_empty());
            assert_eq!(w.window_neighbours(v(i)), &[v(1)]);
        }
        let mut reclaimed = w.window_neighbours(v(1)).to_vec();
        reclaimed.sort_unstable();
        assert_eq!(reclaimed, vec![v(2), v(3), v(4)]);
        // Total degree over the window is still one per edge.
        let drained = w.drain();
        let degree_sum: usize = drained
            .iter()
            .map(|e| e.window_neighbours.len() + e.external_neighbours.len())
            .sum();
        assert_eq!(degree_sum, 2 * 3, "each edge counted once per side");
    }

    #[test]
    fn deletion_drops_edges_instead_of_externalising_them() {
        let mut w = StreamWindow::new(6);
        for i in 1..=3 {
            w.push_vertex(v(i), l(0));
        }
        w.push_edge(v(1), v(2));
        w.push_edge(v(2), v(3));
        assert!(w.delete(v(2)));
        // Unlike eviction, the neighbours gain NO external edges.
        assert!(w.external_neighbours(v(1)).is_empty());
        assert!(w.external_neighbours(v(3)).is_empty());
        assert!(w.window_neighbours(v(1)).is_empty());
        assert_eq!(w.len(), 2, "capacity slot reclaimed");
        assert!(!w.delete(v(2)), "second delete is a no-op");
        // The id can re-enter later as a fresh vertex.
        w.push_vertex(v(2), l(5));
        assert_eq!(w.label_of(v(2)), Some(l(5)));
        assert!(w.window_neighbours(v(2)).is_empty());
    }

    #[test]
    fn deleting_an_evicted_vertex_purges_external_edges() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        w.push_edge(v(1), v(2));
        w.remove(v(1)).unwrap(); // eviction: 2 now sees 1 externally
        assert_eq!(w.external_neighbours(v(2)), &[v(1)]);
        assert!(w.delete(v(1)));
        assert!(w.external_neighbours(v(2)).is_empty());
        // Re-entry of the deleted id must NOT resurrect the dropped edge.
        w.push_vertex(v(1), l(0));
        assert!(w.window_neighbours(v(1)).is_empty());
        assert!(w.window_neighbours(v(2)).is_empty());
    }

    #[test]
    fn remove_edge_covers_window_and_external_cases() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        w.push_vertex(v(2), l(1));
        w.push_edge(v(1), v(2));
        assert!(w.remove_edge(v(2), v(1)), "endpoint order is irrelevant");
        assert!(w.window_neighbours(v(1)).is_empty());
        assert!(w.window_neighbours(v(2)).is_empty());
        assert!(!w.remove_edge(v(1), v(2)), "already gone");

        w.push_edge(v(2), v(99)); // external edge
        assert!(w.remove_edge(v(99), v(2)));
        assert!(w.external_neighbours(v(2)).is_empty());
        // Re-entry of 99 finds no stale reverse entry to reclaim.
        w.push_vertex(v(99), l(0));
        assert!(w.window_neighbours(v(99)).is_empty());
        assert!(!w.remove_edge(v(50), v(51)), "unknown endpoints");
    }

    #[test]
    fn relabel_updates_buffered_labels_only() {
        let mut w = StreamWindow::new(4);
        w.push_vertex(v(1), l(0));
        assert!(w.relabel(v(1), l(9)));
        assert_eq!(w.label_of(v(1)), Some(l(9)));
        assert!(!w.relabel(v(2), l(1)));
    }

    #[test]
    fn vertices_iterates_in_arrival_order() {
        let mut w = StreamWindow::new(10);
        for i in [5u64, 3, 9] {
            w.push_vertex(v(i), l(0));
        }
        let order: Vec<_> = w.vertices().collect();
        assert_eq!(order, vec![v(5), v(3), v(9)]);
    }
}
