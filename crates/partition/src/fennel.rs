//! Fennel streaming partitioning (Tsourakakis et al., WSDM 2014).
//!
//! Fennel replaces LDG's multiplicative capacity discount with an additive,
//! degree-based cost: a new vertex `v` goes to the partition maximising
//!
//! ```text
//! |N(v) ∩ V_i| − α · γ · |V_i|^(γ − 1)
//! ```
//!
//! subject to a hard balance cap `|V_i| ≤ ν · n / k`. With the paper's
//! recommended parameters `γ = 1.5` and `α = √k · m / n^{3/2}` the objective
//! interpolates between edge-cut minimisation and balance.
//!
//! The streaming model (one pending vertex, decided when the next vertex
//! arrives) is identical to [`crate::ldg`].

use crate::error::{PartitionError, Result};
use crate::partition::{PartitionId, Partitioning};
use crate::traits::{Partitioner, PartitionerStats};
use loom_graph::{StreamElement, VertexId};
use serde::{Deserialize, Serialize};

/// Configuration for [`FennelPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FennelConfig {
    /// Number of partitions.
    pub k: u32,
    /// Expected number of vertices (used for α and the balance cap).
    pub expected_vertices: usize,
    /// Expected number of edges (used for α).
    pub expected_edges: usize,
    /// Balance cap multiplier ν (≥ 1.0); partitions never exceed
    /// `ν · n / k` vertices.
    pub balance_cap: f64,
    /// The γ exponent of the cost term (the paper recommends 1.5).
    pub gamma: f64,
}

impl FennelConfig {
    /// Recommended defaults for a graph of the given expected size.
    pub fn new(k: u32, expected_vertices: usize, expected_edges: usize) -> Self {
        Self {
            k,
            expected_vertices,
            expected_edges,
            balance_cap: 1.1,
            gamma: 1.5,
        }
    }

    /// The α load-cost coefficient: `√k · m / n^{3/2}` for γ = 1.5, and the
    /// general form `m · k^{γ-1} / n^γ` otherwise.
    pub fn alpha(&self) -> f64 {
        let n = self.expected_vertices.max(1) as f64;
        let m = self.expected_edges.max(1) as f64;
        let k = f64::from(self.k.max(1));
        m * k.powf(self.gamma - 1.0) / n.powf(self.gamma)
    }
}

/// The Fennel streaming partitioner.
#[derive(Debug, Clone)]
pub struct FennelPartitioner {
    config: FennelConfig,
    alpha: f64,
    hard_cap: usize,
    partitioning: Partitioning,
    pending: Option<PendingVertex>,
    /// Recycled neighbour buffer from the last flushed pending vertex.
    spare_neighbours: Vec<VertexId>,
    stats: PartitionerStats,
}

#[derive(Debug, Clone)]
struct PendingVertex {
    id: VertexId,
    assigned_neighbours: Vec<VertexId>,
}

impl FennelPartitioner {
    /// Create a Fennel partitioner.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: FennelConfig) -> Result<Self> {
        if config.gamma <= 1.0 {
            return Err(PartitionError::InvalidConfig(format!(
                "gamma must exceed 1.0, got {}",
                config.gamma
            )));
        }
        if config.balance_cap < 1.0 {
            return Err(PartitionError::InvalidConfig(format!(
                "balance_cap must be >= 1.0, got {}",
                config.balance_cap
            )));
        }
        let ideal = config.expected_vertices as f64 / config.k.max(1) as f64;
        let hard_cap = ((ideal * config.balance_cap).ceil() as usize).max(1);
        let partitioning = Partitioning::new(config.k, hard_cap)?;
        Ok(Self {
            alpha: config.alpha(),
            hard_cap,
            config,
            partitioning,
            pending: None,
            spare_neighbours: Vec::new(),
            stats: PartitionerStats::default(),
        })
    }

    /// Read-only access to the partitioning built so far.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The hard per-partition vertex cap `ν · n / k`.
    pub fn hard_cap(&self) -> usize {
        self.hard_cap
    }

    fn marginal_cost(&self, size: usize) -> f64 {
        self.alpha * self.config.gamma * (size as f64).powf(self.config.gamma - 1.0)
    }

    fn choose_partition(&self, neighbours: &[VertexId]) -> PartitionId {
        let mut best: Option<(PartitionId, f64)> = None;
        for p in self.partitioning.partitions() {
            let size = self.partitioning.size(p);
            if size >= self.hard_cap {
                continue;
            }
            let in_p = neighbours
                .iter()
                .filter(|&&n| self.partitioning.partition_of(n) == Some(p))
                .count() as f64;
            let score = in_p - self.marginal_cost(size);
            let better = match best {
                None => true,
                Some((bp, bs)) => {
                    score > bs + 1e-12
                        || ((score - bs).abs() <= 1e-12
                            && self.partitioning.size(p) < self.partitioning.size(bp))
                }
            };
            if better {
                best = Some((p, score));
            }
        }
        // If every partition hit the hard cap (only possible when the stream
        // exceeds the expected size), fall back to the least loaded one.
        best.map(|(p, _)| p)
            .unwrap_or_else(|| self.partitioning.least_loaded())
    }

    fn flush_pending(&mut self) -> Result<()> {
        if let Some(mut pending) = self.pending.take() {
            let target = self.choose_partition(&pending.assigned_neighbours);
            self.partitioning.assign(pending.id, target)?;
            pending.assigned_neighbours.clear();
            self.spare_neighbours = pending.assigned_neighbours;
        }
        Ok(())
    }

    /// The shared per-element transition, used by both ingestion paths.
    fn ingest_element(&mut self, element: &StreamElement) -> Result<()> {
        match *element {
            StreamElement::AddVertex { id, .. } => {
                self.stats.vertices_ingested += 1;
                self.flush_pending()?;
                self.pending = Some(PendingVertex {
                    id,
                    assigned_neighbours: std::mem::take(&mut self.spare_neighbours),
                });
            }
            StreamElement::AddEdge { source, target } => {
                self.stats.edges_ingested += 1;
                if let Some(pending) = self.pending.as_mut() {
                    let other = if source == pending.id {
                        Some(target)
                    } else if target == pending.id {
                        Some(source)
                    } else {
                        None
                    };
                    if let Some(other) = other {
                        if self.partitioning.is_assigned(other) {
                            pending.assigned_neighbours.push(other);
                        }
                    }
                }
            }
            StreamElement::RemoveVertex { id } => {
                if self.pending.as_ref().is_some_and(|p| p.id == id) {
                    // The vertex never got placed: drop the buffered decision
                    // and recycle its neighbour buffer.
                    let mut pending = self.pending.take().expect("checked above");
                    pending.assigned_neighbours.clear();
                    self.spare_neighbours = pending.assigned_neighbours;
                } else {
                    self.partitioning.unassign(id);
                    if let Some(pending) = self.pending.as_mut() {
                        pending.assigned_neighbours.retain(|&n| n != id);
                    }
                }
            }
            StreamElement::RemoveEdge { source, target } => {
                if let Some(pending) = self.pending.as_mut() {
                    let other = if source == pending.id {
                        Some(target)
                    } else if target == pending.id {
                        Some(source)
                    } else {
                        None
                    };
                    if let Some(other) = other {
                        // Remove one occurrence, mirroring the one push the
                        // matching AddEdge performed.
                        if let Some(pos) =
                            pending.assigned_neighbours.iter().position(|&n| n == other)
                        {
                            pending.assigned_neighbours.swap_remove(pos);
                        }
                    }
                }
            }
            // Fennel's objective never looks at labels.
            StreamElement::Relabel { .. } => {}
        }
        Ok(())
    }
}

impl Partitioner for FennelPartitioner {
    fn name(&self) -> &'static str {
        "fennel"
    }

    fn ingest(&mut self, element: &StreamElement) -> Result<()> {
        self.ingest_element(element)
    }

    fn ingest_batch(&mut self, batch: &[StreamElement]) -> Result<()> {
        // Amortised fast path, mirroring LDG: one reservation for the whole
        // chunk's placements, then a dispatch-free tight loop.
        self.stats.batches_ingested += 1;
        let vertices = batch.iter().filter(|e| e.is_vertex()).count();
        self.partitioning.reserve(vertices);
        for element in batch {
            self.ingest_element(element)?;
        }
        Ok(())
    }

    fn snapshot(&self) -> Partitioning {
        self.partitioning.clone()
    }

    fn finish(&mut self) -> Result<Partitioning> {
        self.flush_pending()?;
        Ok(self.partitioning.take())
    }

    fn stats(&self) -> PartitionerStats {
        PartitionerStats {
            assigned: self.partitioning.assigned_count(),
            buffered: usize::from(self.pending.is_some()),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::traits::partition_stream;
    use loom_graph::generators::{barabasi_albert, GeneratorConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;

    #[test]
    fn config_validation_and_alpha() {
        assert!(FennelPartitioner::new(FennelConfig {
            gamma: 1.0,
            ..FennelConfig::new(4, 100, 300)
        })
        .is_err());
        assert!(FennelPartitioner::new(FennelConfig {
            balance_cap: 0.9,
            ..FennelConfig::new(4, 100, 300)
        })
        .is_err());
        let config = FennelConfig::new(4, 10_000, 30_000);
        let expected = (4.0f64).sqrt() * 30_000.0 / (10_000.0f64).powf(1.5);
        assert!((config.alpha() - expected).abs() < 1e-9);
    }

    #[test]
    fn respects_the_hard_balance_cap() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 3), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Bfs);
        let mut partitioner =
            FennelPartitioner::new(FennelConfig::new(4, g.vertex_count(), g.edge_count())).unwrap();
        let cap = partitioner.hard_cap();
        let part = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(part.assigned_count(), 2_000);
        for p in part.partitions() {
            assert!(part.size(p) <= cap, "partition over hard cap");
        }
    }

    #[test]
    fn beats_hash_on_cut_ratio() {
        let g = barabasi_albert(GeneratorConfig::new(3_000, 4, 1), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 4 });
        let fennel = {
            let mut p =
                FennelPartitioner::new(FennelConfig::new(4, g.vertex_count(), g.edge_count()))
                    .unwrap();
            partition_stream(&mut p, &stream).unwrap()
        };
        let hash = {
            let mut p = crate::hash::HashPartitioner::new(4, g.vertex_count()).unwrap();
            partition_stream(&mut p, &stream).unwrap()
        };
        assert!(evaluate(&g, &fennel).cut_ratio < evaluate(&g, &hash).cut_ratio);
    }

    #[test]
    fn overflow_beyond_expected_size_still_assigns() {
        // Expect 10 vertices but stream 40: the hard cap fills up and the
        // fallback path must still place everything.
        let g = barabasi_albert(GeneratorConfig::new(40, 2, 2), 1).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Bfs);
        let mut partitioner = FennelPartitioner::new(FennelConfig::new(2, 10, 10)).unwrap();
        let part = partition_stream(&mut partitioner, &stream).unwrap();
        assert_eq!(part.assigned_count(), 40);
    }

    #[test]
    fn name_is_stable() {
        let p = FennelPartitioner::new(FennelConfig::new(2, 10, 10)).unwrap();
        assert_eq!(p.name(), "fennel");
    }

    #[test]
    fn removals_reclaim_capacity_under_the_hard_cap() {
        use loom_graph::Label;
        // Cap of 2 vertices per partition with k=2: four adds fill both
        // partitions; a removal must free a slot the next vertex can take.
        let mut p = FennelPartitioner::new(FennelConfig::new(2, 4, 4)).unwrap();
        let add = |id: u64| StreamElement::AddVertex {
            id: VertexId::new(id),
            label: Label::new(0),
        };
        p.ingest_batch(&[add(0), add(1), add(2), add(3)]).unwrap();
        p.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(2),
        })
        .unwrap();
        p.ingest(&add(4)).unwrap();
        let finished = p.finish().unwrap();
        assert_eq!(finished.assigned_count(), 4);
        assert_eq!(finished.partition_of(VertexId::new(2)), None);
        for part in finished.partitions() {
            assert!(finished.size(part) <= 2, "hard cap respected after churn");
        }
    }

    #[test]
    fn batched_ingestion_matches_per_element() {
        let g = barabasi_albert(GeneratorConfig::new(1_200, 4, 21), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 23 });
        let reference = {
            let mut p =
                FennelPartitioner::new(FennelConfig::new(4, g.vertex_count(), g.edge_count()))
                    .unwrap();
            for element in &stream {
                p.ingest(element).unwrap();
            }
            p.finish().unwrap()
        };
        for chunk_size in [1usize, 64, 1024] {
            let mut p =
                FennelPartitioner::new(FennelConfig::new(4, g.vertex_count(), g.edge_count()))
                    .unwrap();
            let batched =
                crate::traits::partition_stream_batched(&mut p, &stream, chunk_size).unwrap();
            assert_eq!(batched.assigned_count(), reference.assigned_count());
            for (v, part) in reference.assignments() {
                assert_eq!(batched.partition_of(v), Some(part), "chunk={chunk_size}");
            }
        }
    }
}
