//! LOOM configuration.
//!
//! [`LoomConfig`] moved to `loom-partition`'s declarative spec layer
//! ([`loom_partition::spec`]) so that a
//! [`loom_partition::spec::PartitionerSpec`] can describe every partitioner —
//! including LOOM — as plain serde data. This module re-exports it under its
//! historical path; prefer [`crate::LoomBuilder`] for fluent construction.

pub use loom_partition::spec::LoomConfig;
