//! LOOM configuration.

use loom_partition::error::{PartitionError, Result};
use serde::{Deserialize, Serialize};

/// Configuration for a [`crate::LoomPartitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoomConfig {
    /// Number of partitions `k`.
    pub k: u32,
    /// Expected number of vertices in the stream (drives the LDG capacity
    /// `C = slack · n / k`).
    pub expected_vertices: usize,
    /// Multiplicative balance slack (≥ 1.0).
    pub slack: f64,
    /// Size of the sliding stream window, in vertices.
    pub window_size: usize,
    /// The frequency threshold `T`: TPSTry++ nodes with a p-value at or above
    /// this are treated as motifs worth keeping intact.
    pub motif_threshold: f64,
    /// Upper bound on the size (vertices) of a motif cluster assigned as a
    /// unit; larger clusters are split back into single-vertex assignments to
    /// protect balance (the pathology the paper's §4.4 warns about).
    pub max_cluster_size: usize,
    /// Ablation switch: when `false` LOOM ignores motifs entirely and behaves
    /// as windowed LDG.
    pub motif_clustering: bool,
    /// Ablation switch: when `false` the LDG capacity penalty is dropped from
    /// the cluster placement score (pure neighbour-count greedy).
    pub capacity_penalty: bool,
    /// Ablation switch: when `false` only the match containing the evicted
    /// vertex is co-assigned, instead of the transitive union of overlapping
    /// matches.
    pub merge_overlapping: bool,
    /// When `true`, clusters exceeding `max_cluster_size` are split into
    /// connected chunks of at most `max_cluster_size` vertices and the chunk
    /// containing the evicted vertex is still assigned as a unit (the local
    /// partitioning of large matches the paper lists as future work). When
    /// `false`, oversized clusters fall back to single-vertex LDG.
    pub split_oversized_clusters: bool,
    /// When `true`, every signature match is verified with exact labelled
    /// isomorphism before being used (Song et al.'s secondary check). The
    /// paper skips verification; enabling it lets experiments measure the
    /// signature false-positive rate.
    pub verify_matches: bool,
}

impl LoomConfig {
    /// Sensible defaults for `k` partitions over a stream of about
    /// `expected_vertices` vertices.
    pub fn new(k: u32, expected_vertices: usize) -> Self {
        Self {
            k,
            expected_vertices,
            slack: 1.1,
            window_size: 256,
            motif_threshold: 0.4,
            max_cluster_size: 32,
            motif_clustering: true,
            capacity_penalty: true,
            merge_overlapping: true,
            split_oversized_clusters: true,
            verify_matches: false,
        }
    }

    /// Builder-style setter for the window size.
    #[must_use]
    pub fn with_window_size(mut self, window_size: usize) -> Self {
        self.window_size = window_size;
        self
    }

    /// Builder-style setter for the motif frequency threshold `T`.
    #[must_use]
    pub fn with_motif_threshold(mut self, threshold: f64) -> Self {
        self.motif_threshold = threshold;
        self
    }

    /// Builder-style setter for the balance slack.
    #[must_use]
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Builder-style setter for the maximum motif-cluster size.
    #[must_use]
    pub fn with_max_cluster_size(mut self, size: usize) -> Self {
        self.max_cluster_size = size;
        self
    }

    /// Disable motif clustering (ablation: pure windowed LDG).
    #[must_use]
    pub fn without_motif_clustering(mut self) -> Self {
        self.motif_clustering = false;
        self
    }

    /// Disable the capacity penalty in cluster scoring (ablation).
    #[must_use]
    pub fn without_capacity_penalty(mut self) -> Self {
        self.capacity_penalty = false;
        self
    }

    /// Disable merging of overlapping matches at assignment time (ablation).
    #[must_use]
    pub fn without_overlap_merging(mut self) -> Self {
        self.merge_overlapping = false;
        self
    }

    /// Disable chunked assignment of oversized clusters (ablation: oversized
    /// clusters fall back to single-vertex LDG).
    #[must_use]
    pub fn without_cluster_splitting(mut self) -> Self {
        self.split_oversized_clusters = false;
        self
    }

    /// Enable exact verification of every signature match.
    #[must_use]
    pub fn with_verification(mut self) -> Self {
        self.verify_matches = true;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        if self.window_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "window_size must be positive".into(),
            ));
        }
        if !self.slack.is_finite() || self.slack < 1.0 {
            return Err(PartitionError::InvalidConfig(format!(
                "slack must be >= 1.0, got {}",
                self.slack
            )));
        }
        if !(0.0..=1.0).contains(&self.motif_threshold) {
            return Err(PartitionError::InvalidConfig(format!(
                "motif_threshold must be in [0, 1], got {}",
                self.motif_threshold
            )));
        }
        if self.max_cluster_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "max_cluster_size must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(LoomConfig::new(4, 10_000).validate().is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let config = LoomConfig::new(4, 1_000)
            .with_window_size(64)
            .with_motif_threshold(0.25)
            .with_slack(1.5)
            .with_max_cluster_size(10)
            .without_motif_clustering()
            .without_capacity_penalty()
            .without_overlap_merging()
            .without_cluster_splitting()
            .with_verification();
        assert_eq!(config.window_size, 64);
        assert!((config.motif_threshold - 0.25).abs() < 1e-12);
        assert!((config.slack - 1.5).abs() < 1e-12);
        assert_eq!(config.max_cluster_size, 10);
        assert!(!config.motif_clustering);
        assert!(!config.capacity_penalty);
        assert!(!config.merge_overlapping);
        assert!(!config.split_oversized_clusters);
        assert!(config.verify_matches);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(LoomConfig {
            k: 0,
            ..LoomConfig::new(4, 100)
        }
        .validate()
        .is_err());
        assert!(LoomConfig::new(4, 100)
            .with_window_size(0)
            .validate()
            .is_err());
        assert!(LoomConfig::new(4, 100).with_slack(0.9).validate().is_err());
        assert!(LoomConfig::new(4, 100)
            .with_motif_threshold(1.5)
            .validate()
            .is_err());
        assert!(LoomConfig::new(4, 100)
            .with_max_cluster_size(0)
            .validate()
            .is_err());
    }
}
