//! A compact, read-optimised index of the *frequent* motifs of a TPSTry++.
//!
//! The online matcher only ever needs two questions answered per signature:
//!
//! * "is this signature exactly the signature of a frequent motif?", and
//! * "could this signature still grow into one?" (i.e. does it divide some
//!   frequent motif's signature) — used to prune hopeless growth early.
//!
//! [`FrequentMotifIndex`] snapshots the answer structures once, when the
//! partitioner is constructed, so the streaming hot path never touches the
//! full TPSTry++ again.

use loom_graph::fxhash::FxHashMap;
use loom_motif::signature::{PrimeTable, Signature};
use loom_motif::tpstry::{MotifId, Tpstry};

/// Read-only index over the frequent motifs of a workload summary.
#[derive(Debug, Clone)]
pub struct FrequentMotifIndex {
    prime_table: PrimeTable,
    /// Exact signature → motif id for every frequent motif.
    by_signature: FxHashMap<Signature, MotifId>,
    /// Signatures of frequent motifs, kept separately for the containment
    /// pre-check (sorted by factor count, largest last).
    signatures: Vec<Signature>,
    /// Canonical motif graphs, used by the optional exact verification step.
    motif_graphs: FxHashMap<MotifId, loom_graph::LabelledGraph>,
    /// Largest number of vertices in any frequent motif.
    max_motif_vertices: usize,
    /// Largest number of edges in any frequent motif.
    max_motif_edges: usize,
    /// p-value threshold the index was built with.
    threshold: f64,
}

impl FrequentMotifIndex {
    /// Build the index from a mined TPSTry++ and a frequency threshold `T`.
    ///
    /// Only motifs with at least one edge are indexed: single-vertex motifs
    /// are trivially "matched" by every vertex and say nothing useful about
    /// traversal locality.
    pub fn new(tpstry: &Tpstry, threshold: f64) -> Self {
        let mut by_signature = FxHashMap::default();
        let mut signatures = Vec::new();
        let mut motif_graphs = FxHashMap::default();
        let mut max_motif_vertices = 0;
        let mut max_motif_edges = 0;
        for id in tpstry.frequent_motifs(threshold) {
            let node = tpstry.node(id);
            if node.edge_count() == 0 {
                continue;
            }
            max_motif_vertices = max_motif_vertices.max(node.vertex_count());
            max_motif_edges = max_motif_edges.max(node.edge_count());
            by_signature.entry(node.signature().clone()).or_insert(id);
            signatures.push(node.signature().clone());
            motif_graphs.insert(id, node.graph().clone());
        }
        signatures.sort_by_key(Signature::factor_count);
        Self {
            prime_table: tpstry.prime_table().clone(),
            by_signature,
            signatures,
            motif_graphs,
            max_motif_vertices,
            max_motif_edges,
            threshold,
        }
    }

    /// The canonical graph of an indexed frequent motif, if present.
    pub fn motif_graph(&self, id: MotifId) -> Option<&loom_graph::LabelledGraph> {
        self.motif_graphs.get(&id)
    }

    /// The prime table signatures must be computed against.
    pub fn prime_table(&self) -> &PrimeTable {
        &self.prime_table
    }

    /// The threshold the index was built with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of frequent motifs indexed.
    pub fn motif_count(&self) -> usize {
        self.by_signature.len()
    }

    /// Whether the workload produced no frequent (edge-bearing) motifs — in
    /// that case LOOM degenerates gracefully to windowed LDG.
    pub fn is_empty(&self) -> bool {
        self.by_signature.is_empty()
    }

    /// Largest frequent motif size in vertices (0 when empty).
    pub fn max_motif_vertices(&self) -> usize {
        self.max_motif_vertices
    }

    /// Largest frequent motif size in edges (0 when empty).
    pub fn max_motif_edges(&self) -> usize {
        self.max_motif_edges
    }

    /// Exact lookup: the frequent motif whose signature equals `signature`.
    pub fn motif_for(&self, signature: &Signature) -> Option<MotifId> {
        self.by_signature.get(signature).copied()
    }

    /// Whether `signature` is exactly a frequent motif's signature.
    pub fn is_motif_signature(&self, signature: &Signature) -> bool {
        self.by_signature.contains_key(signature)
    }

    /// Whether a sub-graph with this signature could still grow into a
    /// frequent motif, i.e. whether it divides at least one frequent motif's
    /// signature. Used to stop growing candidate sub-graphs early.
    pub fn could_grow_into_motif(&self, signature: &Signature) -> bool {
        self.signatures.iter().any(|s| signature.divides(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::fixtures::paper_example_workload;
    use loom_motif::mining::MotifMiner;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn paper_index(threshold: f64) -> FrequentMotifIndex {
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        FrequentMotifIndex::new(&tpstry, threshold)
    }

    #[test]
    fn frequent_motifs_are_indexed_without_single_vertices() {
        let index = paper_index(0.5);
        assert!(!index.is_empty());
        assert!(index.max_motif_vertices() >= 3);
        assert!(index.max_motif_edges() >= 2);
        // The a-b edge occurs in all three queries → indexed.
        let ab = index
            .prime_table()
            .signature_of(&path_graph(2, &[l(0), l(1)]))
            .unwrap();
        assert!(index.is_motif_signature(&ab));
        assert!(index.motif_for(&ab).is_some());
        // A single vertex is never indexed, however frequent.
        let single =
            loom_motif::signature::Signature::single_vertex(index.prime_table(), l(0)).unwrap();
        assert!(!index.is_motif_signature(&single));
    }

    #[test]
    fn threshold_filters_rare_motifs() {
        let permissive = paper_index(0.2);
        let strict = paper_index(0.9);
        assert!(permissive.motif_count() > strict.motif_count());
        // The a-b-a-b square appears in only one of three queries: frequent
        // at T = 0.2 but not at T = 0.9.
        let square = permissive
            .prime_table()
            .signature_of(&loom_graph::generators::regular::cycle_graph(
                4,
                &[l(0), l(1), l(0), l(1)],
            ))
            .unwrap();
        assert!(permissive.is_motif_signature(&square));
        assert!(!strict.is_motif_signature(&square));
    }

    #[test]
    fn growth_pruning_uses_divisibility() {
        let index = paper_index(0.5);
        let ab = index
            .prime_table()
            .signature_of(&path_graph(2, &[l(0), l(1)]))
            .unwrap();
        // a-b divides a-b-c (frequent), so it can still grow.
        assert!(index.could_grow_into_motif(&ab));
        // A d-d edge divides nothing in this workload.
        let dd = index
            .prime_table()
            .signature_of(&path_graph(2, &[l(3), l(3)]))
            .unwrap();
        assert!(!index.could_grow_into_motif(&dd));
    }

    #[test]
    fn impossible_threshold_yields_empty_index() {
        let index = paper_index(1.1);
        assert!(index.is_empty());
        assert_eq!(index.motif_count(), 0);
        assert_eq!(index.max_motif_vertices(), 0);
        assert!((index.threshold() - 1.1).abs() < 1e-12);
    }
}
