//! Runtime counters for the LOOM partitioner.

use serde::{Deserialize, Serialize};

/// Counters describing what LOOM did while consuming a stream. Useful both
/// for the experiment reports and for sanity-checking that the workload-aware
/// machinery actually engaged (e.g. `motif_matches_found == 0` means the
/// partitioner degenerated to windowed LDG).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoomStats {
    /// Stream vertices ingested.
    pub vertices_ingested: usize,
    /// Stream edges ingested.
    pub edges_ingested: usize,
    /// Edges whose endpoints were both inside the window when they arrived
    /// (the only edges that can trigger motif matching).
    pub window_edges: usize,
    /// Signatures computed by the matcher.
    pub signatures_computed: usize,
    /// Motif matches discovered in the window.
    pub motif_matches_found: usize,
    /// Motif clusters assigned as a unit.
    pub clusters_assigned: usize,
    /// Total vertices assigned as part of motif clusters.
    pub cluster_vertices_assigned: usize,
    /// Largest cluster assigned as a unit.
    pub largest_cluster: usize,
    /// Clusters that exceeded `max_cluster_size` and were split (into
    /// connected chunks, or back into single-vertex assignments when chunked
    /// assignment is disabled).
    pub clusters_split_for_balance: usize,
    /// Vertices assigned individually with plain LDG.
    pub single_vertices_assigned: usize,
    /// Exact verifications performed on signature matches (0 unless
    /// verification is enabled).
    pub verifications: usize,
    /// Signature matches rejected by exact verification (signature
    /// collisions).
    pub false_positive_matches: usize,
}

impl LoomStats {
    /// Total vertices assigned (cluster + single).
    pub fn total_assigned(&self) -> usize {
        self.cluster_vertices_assigned + self.single_vertices_assigned
    }

    /// Fraction of assigned vertices that were placed as part of a motif
    /// cluster (0.0 when nothing has been assigned).
    pub fn cluster_fraction(&self) -> f64 {
        let total = self.total_assigned();
        if total == 0 {
            0.0
        } else {
            self.cluster_vertices_assigned as f64 / total as f64
        }
    }
}

impl std::fmt::Display for LoomStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertices={} edges={} matches={} clusters={} cluster_vertices={} singles={} split={}",
            self.vertices_ingested,
            self.edges_ingested,
            self.motif_matches_found,
            self.clusters_assigned,
            self.cluster_vertices_assigned,
            self.single_vertices_assigned,
            self.clusters_split_for_balance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_figures() {
        let stats = LoomStats {
            cluster_vertices_assigned: 30,
            single_vertices_assigned: 70,
            ..LoomStats::default()
        };
        assert_eq!(stats.total_assigned(), 100);
        assert!((stats.cluster_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(LoomStats::default().cluster_fraction(), 0.0);
        assert!(stats.to_string().contains("cluster_vertices=30"));
    }
}
