//! Fluent construction of [`LoomPartitioner`]s.
//!
//! [`LoomBuilder`] replaces the `LoomConfig::new` + `LoomPartitioner::new` /
//! `with_index` constructor sprawl with one chainable entry point that also
//! handles sharing a pre-built [`FrequentMotifIndex`] across runs (the same
//! workload summary is typically partitioned many times in an experiment).

use crate::index::FrequentMotifIndex;
use crate::loom::LoomPartitioner;
use loom_motif::tpstry::Tpstry;
use loom_partition::error::{PartitionError, Result};
use loom_partition::spec::LoomConfig;

/// Fluent builder for [`LoomPartitioner`].
///
/// ```
/// use loom_core::LoomBuilder;
/// use loom_motif::fixtures::paper_example_workload;
/// use loom_motif::mining::MotifMiner;
///
/// let tpstry = MotifMiner::default()
///     .mine(&paper_example_workload())
///     .unwrap();
/// let loom = LoomBuilder::new(2, 8)
///     .window_size(4)
///     .motif_threshold(0.3)
///     .build(&tpstry)
///     .unwrap();
/// assert_eq!(loom.config().window_size, 4);
/// ```
#[derive(Debug, Clone)]
pub struct LoomBuilder {
    config: LoomConfig,
    index: Option<FrequentMotifIndex>,
}

impl LoomBuilder {
    /// Start from the default configuration for `k` partitions over a stream
    /// of about `expected_vertices` vertices.
    pub fn new(k: u32, expected_vertices: usize) -> Self {
        Self {
            config: LoomConfig::new(k, expected_vertices),
            index: None,
        }
    }

    /// Start from an explicit configuration (e.g. one deserialised from an
    /// experiment spec).
    pub fn from_config(config: LoomConfig) -> Self {
        Self {
            config,
            index: None,
        }
    }

    /// Size of the sliding stream window, in vertices.
    #[must_use]
    pub fn window_size(mut self, window_size: usize) -> Self {
        self.config = self.config.with_window_size(window_size);
        self
    }

    /// The motif frequency threshold `T`.
    #[must_use]
    pub fn motif_threshold(mut self, threshold: f64) -> Self {
        self.config = self.config.with_motif_threshold(threshold);
        self
    }

    /// Multiplicative balance slack (≥ 1.0).
    #[must_use]
    pub fn slack(mut self, slack: f64) -> Self {
        self.config = self.config.with_slack(slack);
        self
    }

    /// Upper bound on the size of a motif cluster assigned as a unit.
    #[must_use]
    pub fn cluster_cap(mut self, size: usize) -> Self {
        self.config = self.config.with_max_cluster_size(size);
        self
    }

    /// Disable motif clustering (ablation: pure windowed LDG).
    #[must_use]
    pub fn without_motif_clustering(mut self) -> Self {
        self.config = self.config.without_motif_clustering();
        self
    }

    /// Disable the capacity penalty in cluster scoring (ablation).
    #[must_use]
    pub fn without_capacity_penalty(mut self) -> Self {
        self.config = self.config.without_capacity_penalty();
        self
    }

    /// Disable merging of overlapping matches at assignment time (ablation).
    #[must_use]
    pub fn without_overlap_merging(mut self) -> Self {
        self.config = self.config.without_overlap_merging();
        self
    }

    /// Disable chunked assignment of oversized clusters (ablation).
    #[must_use]
    pub fn without_cluster_splitting(mut self) -> Self {
        self.config = self.config.without_cluster_splitting();
        self
    }

    /// Enable exact verification of every signature match.
    #[must_use]
    pub fn verify_matches(mut self) -> Self {
        self.config = self.config.with_verification();
        self
    }

    /// Share a pre-built frequent motif index instead of deriving one from a
    /// TPSTry++ at build time (saves the index construction when the same
    /// workload summary drives many partitioner runs).
    #[must_use]
    pub fn share_index(mut self, index: FrequentMotifIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// The configuration accumulated so far.
    pub fn config(&self) -> &LoomConfig {
        &self.config
    }

    /// Build the partitioner, deriving the frequent motif index from `tpstry`
    /// at the configured threshold unless one was shared via
    /// [`LoomBuilder::share_index`].
    ///
    /// # Errors
    ///
    /// Returns a configuration error if the accumulated config is invalid.
    pub fn build(self, tpstry: &Tpstry) -> Result<LoomPartitioner> {
        match self.index {
            Some(index) => LoomPartitioner::with_index(self.config, index),
            None => LoomPartitioner::new(self.config, tpstry),
        }
    }

    /// Build the partitioner from the shared index alone.
    ///
    /// # Errors
    ///
    /// Fails if no index was shared via [`LoomBuilder::share_index`], or if
    /// the accumulated config is invalid.
    pub fn build_with_shared_index(self) -> Result<LoomPartitioner> {
        let Some(index) = self.index else {
            return Err(PartitionError::InvalidConfig(
                "LoomBuilder::build_with_shared_index needs share_index(..) first \
                 (or call build(&tpstry) to derive one)"
                    .into(),
            ));
        };
        LoomPartitioner::with_index(self.config, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_motif::fixtures::paper_example_workload;
    use loom_motif::mining::MotifMiner;

    fn tpstry() -> Tpstry {
        MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap()
    }

    #[test]
    fn builder_sets_every_knob() {
        let builder = LoomBuilder::new(4, 1_000)
            .window_size(64)
            .motif_threshold(0.25)
            .slack(1.5)
            .cluster_cap(10)
            .without_motif_clustering()
            .without_capacity_penalty()
            .without_overlap_merging()
            .without_cluster_splitting()
            .verify_matches();
        let config = *builder.config();
        assert_eq!(config.window_size, 64);
        assert!((config.motif_threshold - 0.25).abs() < 1e-12);
        assert!((config.slack - 1.5).abs() < 1e-12);
        assert_eq!(config.max_cluster_size, 10);
        assert!(!config.motif_clustering);
        assert!(!config.capacity_penalty);
        assert!(!config.merge_overlapping);
        assert!(!config.split_oversized_clusters);
        assert!(config.verify_matches);
        assert!(builder.build(&tpstry()).is_ok());
    }

    #[test]
    fn shared_index_skips_tpstry_derivation() {
        let tpstry = tpstry();
        let index = FrequentMotifIndex::new(&tpstry, 0.3);
        let loom = LoomBuilder::new(2, 8)
            .window_size(4)
            .share_index(index)
            .build_with_shared_index()
            .unwrap();
        assert_eq!(loom.config().k, 2);
    }

    #[test]
    fn shared_index_is_required_when_no_tpstry_is_given() {
        assert!(LoomBuilder::new(2, 8).build_with_shared_index().is_err());
    }

    #[test]
    fn invalid_configs_fail_at_build() {
        assert!(LoomBuilder::new(0, 8).build(&tpstry()).is_err());
        assert!(LoomBuilder::new(2, 8).slack(0.5).build(&tpstry()).is_err());
    }

    #[test]
    fn from_config_round_trips() {
        let config = LoomConfig::new(4, 100).with_window_size(16);
        let builder = LoomBuilder::from_config(config);
        assert_eq!(*builder.config(), config);
    }
}
