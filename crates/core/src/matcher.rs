//! Graph-stream pattern matching against the frequent motifs of a workload.
//!
//! This is the paper's §4.3: as edges arrive inside the stream window, the
//! matcher maintains the set of window sub-graphs that (non-authoritatively,
//! via signatures) match a *frequent motif* of the workload.
//!
//! For every edge `e = (a, b)` whose endpoints are both buffered, the matcher
//!
//! 1. tries to extend each existing match containing `a` or `b` by `e` — the
//!    extension is kept only if the extended signature is itself a frequent
//!    motif signature (the paper's "must match a child of `n`" rule);
//! 2. runs the incremental re-computation of Figure 3: starting from `e`
//!    alone it greedily grows a sub-graph along window edges, keeping an edge
//!    only while the growing signature still *divides* some frequent motif's
//!    signature, and records the largest sub-graph that exactly matches a
//!    motif. This catches matches that share sub-structure with existing
//!    matches (the two overlapping `abc` instances of Figure 3).
//!
//! All bookkeeping is per-window: when vertices are assigned and leave the
//! window, the matches containing them are dropped.

use crate::index::FrequentMotifIndex;
use loom_graph::fxhash::FxHashSet;
use loom_graph::ids::EdgeKey;
use loom_graph::VertexId;
use loom_motif::signature::Signature;
use loom_motif::tpstry::MotifId;
use loom_partition::window::StreamWindow;

/// A sub-graph of the stream window that matches a frequent motif.
#[derive(Debug, Clone)]
pub struct MotifMatch {
    /// The motif matched (a node of the workload's TPSTry++).
    pub motif: MotifId,
    /// The matched vertices, sorted by id.
    pub vertices: Vec<VertexId>,
    /// The edges of the matched sub-graph.
    pub edges: Vec<EdgeKey>,
    /// The signature of the matched sub-graph.
    pub signature: Signature,
}

impl MotifMatch {
    /// Whether the match contains a vertex.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Number of vertices in the match.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the match is empty (never true for a constructed match).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Counters the matcher feeds back into [`crate::LoomStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MatcherCounters {
    /// Signatures computed (including rejected growth attempts).
    pub signatures_computed: usize,
    /// Matches discovered (extensions of existing matches are not counted
    /// twice).
    pub matches_found: usize,
    /// Exact-verification checks performed (only when verification is on).
    pub verifications: usize,
    /// Signature matches rejected by exact verification — i.e. signature
    /// collisions / false positives.
    pub false_positives: usize,
}

/// The incremental stream motif matcher.
#[derive(Debug, Clone)]
pub struct StreamMotifMatcher {
    index: FrequentMotifIndex,
    matches: Vec<MotifMatch>,
    counters: MatcherCounters,
    verify: bool,
}

impl StreamMotifMatcher {
    /// Create a matcher over the given frequent-motif index.
    pub fn new(index: FrequentMotifIndex) -> Self {
        Self {
            index,
            matches: Vec::new(),
            counters: MatcherCounters::default(),
            verify: false,
        }
    }

    /// Enable or disable exact verification of signature matches.
    ///
    /// The paper follows Song et al. in treating signature equality as a
    /// *non-authoritative* match and skipping the secondary verification
    /// step, arguing collisions are rare. With verification on, every
    /// candidate match is additionally checked with exact labelled
    /// isomorphism against the motif graph; rejected candidates are counted
    /// in [`MatcherCounters::false_positives`], which is how experiment E-F8
    /// measures the collision rate empirically.
    #[must_use]
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Whether exact verification is enabled.
    pub fn verification_enabled(&self) -> bool {
        self.verify
    }

    /// Exact check that a candidate match really is isomorphic to its motif.
    /// Returns `true` when verification is disabled or no motif graph is
    /// available (non-authoritative mode).
    fn verify_candidate(
        &mut self,
        window: &StreamWindow,
        vertices: &[VertexId],
        edges: &[EdgeKey],
        motif: MotifId,
    ) -> bool {
        if !self.verify {
            return true;
        }
        let Some(motif_graph) = self.index.motif_graph(motif) else {
            return true;
        };
        self.counters.verifications += 1;
        let mut candidate = loom_graph::LabelledGraph::with_capacity(vertices.len(), edges.len());
        for &v in vertices {
            let Some(label) = window.label_of(v) else {
                return false;
            };
            candidate.insert_vertex(v, label);
        }
        for e in edges {
            if candidate.add_edge_idempotent(e.lo, e.hi).is_err() {
                return false;
            }
        }
        let ok = loom_motif::isomorphism::are_isomorphic(&candidate, motif_graph);
        if !ok {
            self.counters.false_positives += 1;
        }
        ok
    }

    /// The index the matcher was built over.
    pub fn index(&self) -> &FrequentMotifIndex {
        &self.index
    }

    /// The currently tracked matches.
    pub fn matches(&self) -> &[MotifMatch] {
        &self.matches
    }

    /// Number of currently tracked matches.
    pub fn match_count(&self) -> usize {
        self.matches.len()
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> MatcherCounters {
        self.counters
    }

    /// Handle an edge whose endpoints are both inside the window.
    pub fn on_window_edge(&mut self, window: &StreamWindow, a: VertexId, b: VertexId) {
        if self.index.is_empty() {
            return;
        }
        let Some(label_a) = window.label_of(a) else {
            return;
        };
        let Some(label_b) = window.label_of(b) else {
            return;
        };

        // 1. Try to extend existing matches containing one endpoint by the
        //    new edge (paper: the extended signature must itself be a motif).
        let edge = EdgeKey::new(a, b);
        let edge_factor = match self.index.prime_table().edge_factor(label_a, label_b) {
            Ok(f) => f,
            Err(_) => return, // labels outside the workload alphabet
        };
        for i in 0..self.matches.len() {
            let has_a = self.matches[i].contains(a);
            let has_b = self.matches[i].contains(b);
            if has_a == has_b {
                // Either the edge is internal (both endpoints already matched:
                // handled by the growth pass below) or unrelated to this match.
                continue;
            }
            let newcomer = if has_a { b } else { a };
            let newcomer_label = if has_a { label_b } else { label_a };
            let mut extended = self.matches[i].signature.clone();
            if let Ok(vf) = self.index.prime_table().vertex_factor(newcomer_label) {
                extended.multiply(vf);
            } else {
                continue;
            }
            extended.multiply(edge_factor);
            self.counters.signatures_computed += 1;
            if let Some(motif) = self.index.motif_for(&extended) {
                let mut vertices = self.matches[i].vertices.clone();
                vertices.push(newcomer);
                vertices.sort_unstable();
                let mut edges = self.matches[i].edges.clone();
                edges.push(edge);
                if !self.verify_candidate(window, &vertices, &edges, motif) {
                    continue;
                }
                let m = &mut self.matches[i];
                m.vertices = vertices;
                m.edges = edges;
                m.signature = extended;
                m.motif = motif;
            }
        }

        // 2. Incremental re-computation from the new edge (Figure 3): find the
        //    largest window sub-graph containing `e` that matches a motif.
        if let Some(new_match) = self.grow_from_edge(window, a, b) {
            let duplicate = self
                .matches
                .iter()
                .any(|m| m.vertices == new_match.vertices && m.motif == new_match.motif);
            if !duplicate
                && self.verify_candidate(
                    window,
                    &new_match.vertices,
                    &new_match.edges,
                    new_match.motif,
                )
            {
                self.counters.matches_found += 1;
                self.matches.push(new_match);
            }
        }
    }

    /// Drop every match that involves any of the given vertices (they have
    /// been assigned and left the window).
    pub fn remove_vertices(&mut self, vertices: &FxHashSet<VertexId>) {
        self.matches
            .retain(|m| !m.vertices.iter().any(|v| vertices.contains(v)));
    }

    /// Drop every match whose matched sub-graph uses the edge `(a, b)` — the
    /// edge has been removed from the evolving graph, so those sub-graphs no
    /// longer exist. Surviving sub-structure is rediscovered by later window
    /// edges through the ordinary growth pass.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) {
        let edge = EdgeKey::new(a, b);
        self.matches.retain(|m| !m.edges.contains(&edge));
    }

    /// Drop every match containing `v` after a relabel: their signatures were
    /// computed from the old label and are no longer authoritative. Matches
    /// the new label still supports are rediscovered as further edges arrive.
    pub fn relabel(&mut self, v: VertexId) {
        self.matches.retain(|m| !m.contains(v));
    }

    /// The matches containing a vertex.
    pub fn matches_containing(&self, v: VertexId) -> impl Iterator<Item = &MotifMatch> + '_ {
        self.matches.iter().filter(move |m| m.contains(v))
    }

    /// The motif cluster anchored at `v`: the union of the vertex sets of all
    /// matches containing `v`, transitively closed over overlapping matches
    /// when `merge_overlapping` is true (paper §4.4). Returns an empty set if
    /// `v` belongs to no match.
    pub fn cluster_for(&self, v: VertexId, merge_overlapping: bool) -> FxHashSet<VertexId> {
        let mut cluster: FxHashSet<VertexId> = FxHashSet::default();
        let mut in_cluster = vec![false; self.matches.len()];
        let mut frontier: Vec<usize> = Vec::new();
        for (i, m) in self.matches.iter().enumerate() {
            if m.contains(v) {
                in_cluster[i] = true;
                frontier.push(i);
            }
        }
        if frontier.is_empty() {
            return cluster;
        }
        while let Some(i) = frontier.pop() {
            for &vertex in &self.matches[i].vertices {
                cluster.insert(vertex);
            }
            if !merge_overlapping {
                continue;
            }
            for (j, m) in self.matches.iter().enumerate() {
                if in_cluster[j] {
                    continue;
                }
                if m.vertices.iter().any(|u| cluster.contains(u)) {
                    in_cluster[j] = true;
                    frontier.push(j);
                }
            }
        }
        cluster
    }

    /// Grow the largest motif-matching sub-graph containing the edge
    /// `(a, b)`, walking only window-internal edges.
    fn grow_from_edge(
        &mut self,
        window: &StreamWindow,
        a: VertexId,
        b: VertexId,
    ) -> Option<MotifMatch> {
        let table = self.index.prime_table();
        let label_a = window.label_of(a)?;
        let label_b = window.label_of(b)?;
        let mut signature = Signature::empty();
        signature.multiply(table.vertex_factor(label_a).ok()?);
        signature.multiply(table.vertex_factor(label_b).ok()?);
        signature.multiply(table.edge_factor(label_a, label_b).ok()?);
        self.counters.signatures_computed += 1;

        let mut vertices = vec![a.min(b), a.max(b)];
        let mut edges: Vec<EdgeKey> = vec![EdgeKey::new(a, b)];
        let mut best: Option<MotifMatch> =
            self.index.motif_for(&signature).map(|motif| MotifMatch {
                motif,
                vertices: vertices.clone(),
                edges: edges.clone(),
                signature: signature.clone(),
            });
        if best.is_none() && !self.index.could_grow_into_motif(&signature) {
            return None;
        }

        loop {
            if vertices.len() >= self.index.max_motif_vertices()
                && edges.len() >= self.index.max_motif_edges()
            {
                break;
            }
            // Candidate extensions: window edges incident to the current
            // vertex set that are not yet included.
            let mut candidates: Vec<EdgeKey> = Vec::new();
            for &v in &vertices {
                for &n in window.window_neighbours(v) {
                    let e = EdgeKey::new(v, n);
                    if !edges.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();

            let mut progressed = false;
            for e in candidates {
                if edges.len() >= self.index.max_motif_edges() {
                    break;
                }
                let newcomer = [e.lo, e.hi].into_iter().find(|v| !vertices.contains(v));
                if newcomer.is_some() && vertices.len() >= self.index.max_motif_vertices() {
                    continue;
                }
                let (Some(ll), Some(lh)) = (window.label_of(e.lo), window.label_of(e.hi)) else {
                    continue;
                };
                let mut tentative = signature.clone();
                if let Some(nv) = newcomer {
                    let Some(nl) = window.label_of(nv) else {
                        continue;
                    };
                    let Ok(vf) = table.vertex_factor(nl) else {
                        continue;
                    };
                    tentative.multiply(vf);
                }
                let Ok(ef) = table.edge_factor(ll, lh) else {
                    continue;
                };
                tentative.multiply(ef);
                self.counters.signatures_computed += 1;

                let exact = self.index.motif_for(&tentative);
                if exact.is_none() && !self.index.could_grow_into_motif(&tentative) {
                    // Paper: "discard the most recent edge, and do not
                    // traverse to its neighbours".
                    continue;
                }
                signature = tentative;
                edges.push(e);
                if let Some(nv) = newcomer {
                    vertices.push(nv);
                    vertices.sort_unstable();
                }
                if let Some(motif) = exact {
                    best = Some(MotifMatch {
                        motif,
                        vertices: vertices.clone(),
                        edges: edges.clone(),
                        signature: signature.clone(),
                    });
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;
    use loom_motif::fixtures::{fig3_stream_graph, paper_example_workload};
    use loom_motif::mining::MotifMiner;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_motif::workload::Workload;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn v(x: u64) -> VertexId {
        VertexId::new(x)
    }

    /// Index over a workload whose only query is the a-b-c path; every
    /// connected sub-graph of it (a-b, b-c, a-b-c) is a frequent motif.
    fn abc_index() -> FrequentMotifIndex {
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        FrequentMotifIndex::new(&trie, 0.5)
    }

    fn window_with(vertices: &[(u64, u32)], edges: &[(u64, u64)]) -> StreamWindow {
        let mut w = StreamWindow::new(64);
        for &(id, label) in vertices {
            w.push_vertex(v(id), l(label));
        }
        for &(a, b) in edges {
            w.push_edge(v(a), v(b));
        }
        w
    }

    #[test]
    fn single_edge_match_is_detected() {
        let mut matcher = StreamMotifMatcher::new(abc_index());
        let window = window_with(&[(1, 0), (2, 1)], &[(1, 2)]);
        matcher.on_window_edge(&window, v(1), v(2));
        assert_eq!(matcher.match_count(), 1);
        let m = &matcher.matches()[0];
        assert_eq!(m.vertices, vec![v(1), v(2)]);
        assert!(matcher.counters().matches_found >= 1);
    }

    #[test]
    fn match_grows_as_edges_arrive() {
        let mut matcher = StreamMotifMatcher::new(abc_index());
        let mut window = StreamWindow::new(64);
        window.push_vertex(v(1), l(0));
        window.push_vertex(v(2), l(1));
        window.push_edge(v(1), v(2));
        matcher.on_window_edge(&window, v(1), v(2));
        window.push_vertex(v(3), l(2));
        window.push_edge(v(2), v(3));
        matcher.on_window_edge(&window, v(2), v(3));
        // The a-b match extends to a-b-c; the b-c edge also spawns its own
        // match. At least one match must cover all three vertices.
        assert!(matcher
            .matches()
            .iter()
            .any(|m| m.vertices == vec![v(1), v(2), v(3)]));
    }

    #[test]
    fn irrelevant_labels_produce_no_matches() {
        let mut matcher = StreamMotifMatcher::new(abc_index());
        // d-d edge: label pair not present in any motif.
        let window = window_with(&[(1, 3), (2, 3)], &[(1, 2)]);
        matcher.on_window_edge(&window, v(1), v(2));
        assert_eq!(matcher.match_count(), 0);
    }

    #[test]
    fn fig3_overlapping_matches_are_both_found() {
        // Workload: abc path. Stream the Figure 3 graph: a-b-c1 then b-c2.
        let (graph, [a, b, c1, c2]) = fig3_stream_graph();
        let mut matcher = StreamMotifMatcher::new(abc_index());
        let mut window = StreamWindow::new(64);
        for vertex in [a, b, c1, c2] {
            window.push_vertex(vertex, graph.label(vertex).unwrap());
        }
        for (x, y) in [(a, b), (b, c1), (b, c2)] {
            window.push_edge(x, y);
            matcher.on_window_edge(&window, x, y);
        }
        // Both abc instances must be tracked: {a, b, c1} and {a, b, c2}.
        let sets: Vec<Vec<VertexId>> = matcher
            .matches()
            .iter()
            .filter(|m| m.len() == 3)
            .map(|m| m.vertices.clone())
            .collect();
        assert!(
            sets.contains(&vec![a, b, c1]),
            "missing {{a, b, c1}}: {sets:?}"
        );
        assert!(
            sets.contains(&vec![a, b, c2]),
            "missing {{a, b, c2}}: {sets:?}"
        );
        // The cluster anchored at `a` merges both matches.
        let cluster = matcher.cluster_for(a, true);
        assert_eq!(cluster.len(), 4);
        // Without overlap merging, the cluster still contains every match
        // that includes `a` itself (both abc instances include a).
        let unmerged = matcher.cluster_for(c1, false);
        assert!(unmerged.contains(&a) && unmerged.contains(&b) && unmerged.contains(&c1));
    }

    #[test]
    fn removing_vertices_drops_their_matches() {
        let mut matcher = StreamMotifMatcher::new(abc_index());
        let window = window_with(&[(1, 0), (2, 1), (3, 2)], &[(1, 2), (2, 3)]);
        matcher.on_window_edge(&window, v(1), v(2));
        matcher.on_window_edge(&window, v(2), v(3));
        assert!(matcher.match_count() > 0);
        let removed: FxHashSet<VertexId> = [v(2)].into_iter().collect();
        matcher.remove_vertices(&removed);
        assert_eq!(matcher.match_count(), 0);
        assert!(matcher.cluster_for(v(1), true).is_empty());
    }

    #[test]
    fn empty_index_short_circuits() {
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        let empty = FrequentMotifIndex::new(&trie, 1.01); // impossible threshold
        let mut matcher = StreamMotifMatcher::new(empty);
        let window = window_with(&[(1, 0), (2, 1)], &[(1, 2)]);
        matcher.on_window_edge(&window, v(1), v(2));
        assert_eq!(matcher.match_count(), 0);
        assert_eq!(matcher.counters().signatures_computed, 0);
    }

    #[test]
    fn verification_rejects_signature_collisions() {
        // Workload motif: the a-a-a-a path (4 'a' vertices, 3 a-a edges).
        // A star with an 'a' hub and three 'a' leaves has exactly the same
        // factor multiset but is not isomorphic — a signature collision.
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(0), l(0), l(0)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        let index = FrequentMotifIndex::new(&trie, 0.5);

        let star_window = || {
            let mut w = StreamWindow::new(16);
            for id in 1..=4u64 {
                w.push_vertex(v(id), l(0));
            }
            w
        };
        let run = |mut matcher: StreamMotifMatcher| {
            let mut window = star_window();
            for leaf in [2u64, 3, 4] {
                window.push_edge(v(1), v(leaf));
                matcher.on_window_edge(&window, v(1), v(leaf));
            }
            matcher
        };

        // Without verification the star is (incorrectly but permissibly,
        // per the paper) reported as a 4-vertex match.
        let unverified = run(StreamMotifMatcher::new(index.clone()));
        assert!(unverified.matches().iter().any(|m| m.len() == 4));
        assert_eq!(unverified.counters().false_positives, 0);

        // With verification the 4-vertex star candidate is rejected and the
        // collision is counted.
        let verified = run(StreamMotifMatcher::new(index).with_verification(true));
        assert!(verified.verification_enabled());
        assert!(verified.matches().iter().all(|m| m.len() < 4));
        assert!(verified.counters().false_positives > 0);
        assert!(verified.counters().verifications > 0);
    }

    #[test]
    fn verification_accepts_genuine_matches() {
        let mut matcher = StreamMotifMatcher::new(abc_index()).with_verification(true);
        let window = window_with(&[(1, 0), (2, 1), (3, 2)], &[(1, 2), (2, 3)]);
        matcher.on_window_edge(&window, v(1), v(2));
        matcher.on_window_edge(&window, v(2), v(3));
        assert!(matcher
            .matches()
            .iter()
            .any(|m| m.vertices == vec![v(1), v(2), v(3)]));
        assert_eq!(matcher.counters().false_positives, 0);
        assert!(matcher.counters().verifications > 0);
    }

    #[test]
    fn paper_workload_square_match_is_tracked() {
        // With the full Figure 1 workload at a permissive threshold, the
        // a-b-a-b square is a frequent motif; stream a square and check it is
        // captured as a single 4-vertex match.
        let trie = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let index = FrequentMotifIndex::new(&trie, 0.25);
        let mut matcher = StreamMotifMatcher::new(index);
        let mut window = StreamWindow::new(64);
        // Square 1(a) - 2(b) - 6(a) - 5(b) - 1.
        for (id, label) in [(1u64, 0u32), (2, 1), (6, 0), (5, 1)] {
            window.push_vertex(v(id), l(label));
        }
        for (a, b) in [(1u64, 2u64), (2, 6), (6, 5), (5, 1)] {
            window.push_edge(v(a), v(b));
            matcher.on_window_edge(&window, v(a), v(b));
        }
        assert!(
            matcher.matches().iter().any(|m| m.len() == 4),
            "square match not found; matches: {:?}",
            matcher
                .matches()
                .iter()
                .map(|m| m.vertices.clone())
                .collect::<Vec<_>>()
        );
    }
}
