//! # loom-core
//!
//! LOOM — the workload-aware streaming graph partitioner of Firth & Missier
//! (GraphQ@EDBT 2016).
//!
//! LOOM consumes a graph stream and a summary of the query workload `Q`
//! (a [`loom_motif::Tpstry`] mined from `Q`) and produces a k-way
//! partitioning whose goal is not merely a small edge cut but a small
//! **probability of inter-partition traversals** when the queries of `Q` are
//! executed against the partitioned graph.
//!
//! The pipeline (paper §4):
//!
//! 1. the stream is buffered in a sliding [`loom_partition::window::StreamWindow`];
//! 2. a [`matcher::StreamMotifMatcher`] tracks, incrementally and via
//!    number-theoretic signatures, which window sub-graphs match *frequent
//!    motifs* of the workload (§4.3);
//! 3. when the oldest vertex of a motif match leaves the window, the whole
//!    match — together with any overlapping matches — is assigned to a single
//!    partition using the LDG score; vertices that belong to no match are
//!    assigned individually with plain LDG (§4.1, §4.4).
//!
//! ```
//! use loom_core::prelude::*;
//! use loom_graph::prelude::*;
//! use loom_motif::prelude::*;
//!
//! // Mine the workload summary offline.
//! let workload = paper_example_workload();
//! let tpstry = MotifMiner::default().mine(&workload).unwrap();
//!
//! // Partition the example graph stream, workload-aware.
//! let graph = paper_example_graph();
//! let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
//! let config = LoomConfig::new(2, graph.vertex_count());
//! let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
//! let partitioning = partition_stream(&mut loom, &stream).unwrap();
//! assert_eq!(partitioning.assigned_count(), graph.vertex_count());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod config;
pub mod index;
pub mod loom;
pub mod matcher;
pub mod registry;
pub mod stats;

pub use builder::LoomBuilder;
pub use config::LoomConfig;
pub use index::FrequentMotifIndex;
pub use loom::LoomPartitioner;
pub use registry::{workload_registry, workload_registry_with_index};
pub use stats::LoomStats;

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::builder::LoomBuilder;
    pub use crate::config::LoomConfig;
    pub use crate::index::FrequentMotifIndex;
    pub use crate::loom::LoomPartitioner;
    pub use crate::matcher::{MotifMatch, StreamMotifMatcher};
    pub use crate::registry::{workload_registry, workload_registry_with_index};
    pub use crate::stats::LoomStats;
    pub use loom_partition::prelude::*;
}
