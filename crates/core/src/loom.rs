//! The LOOM workload-aware streaming partitioner (paper §4).
//!
//! [`LoomPartitioner`] glues the pieces together:
//!
//! * a [`StreamWindow`] buffers the most recent `window_size` vertices and
//!   their edges;
//! * a [`StreamMotifMatcher`] keeps track of window sub-graphs matching
//!   frequent workload motifs;
//! * when the window overflows (or the stream ends) the oldest vertex is
//!   evicted: if it belongs to a motif match, the *whole* match — plus any
//!   overlapping matches — is assigned to one partition chosen by an LDG
//!   score summed over the cluster; otherwise the vertex is assigned alone
//!   with plain LDG.
//!
//! Clusters larger than `max_cluster_size` are split back into single-vertex
//! assignments to protect balance (the failure mode the paper's §4.4 flags as
//! an open problem).

use crate::config::LoomConfig;
use crate::index::FrequentMotifIndex;
use crate::matcher::StreamMotifMatcher;
use crate::stats::LoomStats;
use loom_graph::fxhash::FxHashSet;
use loom_graph::{StreamElement, VertexId};
use loom_motif::tpstry::Tpstry;
use loom_partition::error::Result;
use loom_partition::ldg::LdgPartitioner;
use loom_partition::partition::{PartitionId, Partitioning};
use loom_partition::traits::{Partitioner, PartitionerStats};
use loom_partition::window::{EdgePlacement, StreamWindow};

/// The LOOM partitioner.
#[derive(Debug, Clone)]
pub struct LoomPartitioner {
    config: LoomConfig,
    partitioning: Partitioning,
    window: StreamWindow,
    matcher: StreamMotifMatcher,
    stats: LoomStats,
    batches_ingested: usize,
}

impl LoomPartitioner {
    /// Create a LOOM partitioner for a workload summarised by `tpstry`.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `config` is invalid.
    pub fn new(config: LoomConfig, tpstry: &Tpstry) -> Result<Self> {
        config.validate()?;
        let index = FrequentMotifIndex::new(tpstry, config.motif_threshold);
        Self::with_index(config, index)
    }

    /// Create a LOOM partitioner from a pre-built frequent motif index
    /// (useful when the same workload summary is shared across runs).
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `config` is invalid.
    pub fn with_index(config: LoomConfig, index: FrequentMotifIndex) -> Result<Self> {
        config.validate()?;
        let partitioning =
            Partitioning::with_slack(config.k, config.expected_vertices, config.slack)?;
        Ok(Self {
            partitioning,
            window: StreamWindow::new(config.window_size),
            matcher: StreamMotifMatcher::new(index).with_verification(config.verify_matches),
            stats: LoomStats::default(),
            batches_ingested: 0,
            config,
        })
    }

    /// Start a fluent [`crate::LoomBuilder`] for `k` partitions over a stream
    /// of about `expected_vertices` vertices.
    pub fn builder(k: u32, expected_vertices: usize) -> crate::builder::LoomBuilder {
        crate::builder::LoomBuilder::new(k, expected_vertices)
    }

    /// The configuration.
    pub fn config(&self) -> &LoomConfig {
        &self.config
    }

    /// Detailed LOOM-specific runtime counters accumulated so far (the
    /// unified cross-partitioner report is [`Partitioner::stats`]).
    pub fn loom_stats(&self) -> LoomStats {
        let counters = self.matcher.counters();
        LoomStats {
            signatures_computed: counters.signatures_computed,
            motif_matches_found: counters.matches_found,
            verifications: counters.verifications,
            false_positive_matches: counters.false_positives,
            ..self.stats
        }
    }

    /// The partitioning built so far (not including buffered vertices).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of vertices currently buffered in the window.
    pub fn buffered(&self) -> usize {
        self.window.len()
    }

    /// Evict the oldest vertex and assign it (and possibly its whole motif
    /// cluster).
    fn evict_and_assign(&mut self) -> Result<()> {
        let Some(oldest) = self.window.oldest() else {
            return Ok(());
        };

        // Work out the motif cluster anchored at the evicted vertex.
        let cluster: FxHashSet<VertexId> = if self.config.motif_clustering {
            self.matcher
                .cluster_for(oldest, self.config.merge_overlapping)
        } else {
            FxHashSet::default()
        };

        if cluster.len() >= 2 && cluster.len() <= self.config.max_cluster_size {
            self.assign_cluster(&cluster)?;
        } else if cluster.len() > self.config.max_cluster_size {
            // The pathology the paper's §4.4 flags: a merged cluster too large
            // to place as a unit without wrecking balance.
            self.stats.clusters_split_for_balance += 1;
            if self.config.split_oversized_clusters {
                let chunk = self.connected_chunk(&cluster, oldest);
                if chunk.len() >= 2 {
                    self.assign_cluster(&chunk)?;
                } else {
                    self.assign_single(oldest)?;
                }
            } else {
                self.assign_single(oldest)?;
            }
        } else {
            self.assign_single(oldest)?;
        }
        Ok(())
    }

    /// A connected chunk of `cluster` containing `anchor`, grown breadth-first
    /// along window edges and capped at `max_cluster_size` vertices. This is
    /// the simple local partitioning of oversized matches the paper leaves as
    /// future work: the chunk is still placed as a unit, the remainder of the
    /// cluster stays buffered and is assigned later.
    fn connected_chunk(
        &self,
        cluster: &FxHashSet<VertexId>,
        anchor: VertexId,
    ) -> FxHashSet<VertexId> {
        let mut chunk: FxHashSet<VertexId> = FxHashSet::default();
        if !cluster.contains(&anchor) {
            return chunk;
        }
        let mut queue = std::collections::VecDeque::new();
        chunk.insert(anchor);
        queue.push_back(anchor);
        while let Some(v) = queue.pop_front() {
            if chunk.len() >= self.config.max_cluster_size {
                break;
            }
            let mut neighbours: Vec<VertexId> = self
                .window
                .window_neighbours(v)
                .iter()
                .copied()
                .filter(|n| cluster.contains(n) && !chunk.contains(n))
                .collect();
            neighbours.sort_unstable();
            for n in neighbours {
                if chunk.len() >= self.config.max_cluster_size {
                    break;
                }
                chunk.insert(n);
                queue.push_back(n);
            }
        }
        chunk
    }

    /// Assign a whole motif cluster to the partition maximising the summed
    /// LDG score, then remove its vertices from the window and matcher.
    fn assign_cluster(&mut self, cluster: &FxHashSet<VertexId>) -> Result<()> {
        // External (already assigned) neighbours of the cluster determine the
        // LDG affinity; neighbours inside the cluster are irrelevant because
        // they will land in the same partition by construction.
        let mut external: Vec<VertexId> = Vec::new();
        for &v in cluster {
            for &n in self.window.external_neighbours(v) {
                if self.partitioning.is_assigned(n) {
                    external.push(n);
                }
            }
            // Window neighbours outside the cluster are not assigned yet and
            // therefore carry no signal.
        }

        let target = self.choose_partition_for(&external, cluster.len());

        // Deterministic assignment order.
        let mut members: Vec<VertexId> = cluster.iter().copied().collect();
        members.sort_unstable();
        for &v in &members {
            // Remove from the window first so adjacency bookkeeping stays
            // consistent for the remaining buffered vertices.
            self.window.remove(v);
            self.partitioning.assign(v, target)?;
        }
        self.matcher.remove_vertices(cluster);

        self.stats.clusters_assigned += 1;
        self.stats.cluster_vertices_assigned += members.len();
        self.stats.largest_cluster = self.stats.largest_cluster.max(members.len());
        Ok(())
    }

    /// Assign a single vertex with plain LDG.
    fn assign_single(&mut self, vertex: VertexId) -> Result<()> {
        let Some(evicted) = self.window.remove(vertex) else {
            return Ok(());
        };
        let assigned_neighbours: Vec<VertexId> = evicted
            .external_neighbours
            .iter()
            .copied()
            .filter(|n| self.partitioning.is_assigned(*n))
            .collect();
        let target = self.choose_partition_for(&assigned_neighbours, 1);
        self.partitioning.assign(vertex, target)?;
        let removed: FxHashSet<VertexId> = [vertex].into_iter().collect();
        self.matcher.remove_vertices(&removed);
        self.stats.single_vertices_assigned += 1;
        Ok(())
    }

    /// LDG partition choice for a set of assigned neighbours, placing
    /// `incoming` new vertices at once. Honour the capacity-penalty ablation
    /// switch and prefer partitions that still have room for the whole group.
    fn choose_partition_for(&self, neighbours: &[VertexId], incoming: usize) -> PartitionId {
        if self.config.capacity_penalty {
            // Prefer a partition with room for the whole group; if none has
            // room, fall back to the plain LDG choice.
            let mut best: Option<(PartitionId, f64)> = None;
            for p in self.partitioning.partitions() {
                if !self.partitioning.has_room_for(p, incoming) {
                    continue;
                }
                let in_p = neighbours
                    .iter()
                    .filter(|&&n| self.partitioning.partition_of(n) == Some(p))
                    .count() as f64;
                let score = in_p * self.partitioning.capacity_penalty(p);
                let better = match best {
                    None => true,
                    Some((bp, bs)) => {
                        score > bs + 1e-12
                            || ((score - bs).abs() <= 1e-12
                                && self.partitioning.size(p) < self.partitioning.size(bp))
                    }
                };
                if better {
                    best = Some((p, score));
                }
            }
            best.map(|(p, _)| p)
                .unwrap_or_else(|| LdgPartitioner::choose_partition(&self.partitioning, neighbours))
        } else {
            // Ablation: pure neighbour-majority greedy, ties to the emptier
            // partition.
            let mut best = self.partitioning.least_loaded();
            let mut best_count = 0usize;
            for p in self.partitioning.partitions() {
                let count = neighbours
                    .iter()
                    .filter(|&&n| self.partitioning.partition_of(n) == Some(p))
                    .count();
                if count > best_count
                    || (count == best_count
                        && self.partitioning.size(p) < self.partitioning.size(best))
                {
                    best = p;
                    best_count = count;
                }
            }
            best
        }
    }

    /// The shared per-element transition, used by both ingestion paths.
    fn ingest_element(&mut self, element: &StreamElement) -> Result<()> {
        match *element {
            StreamElement::AddVertex { id, label } => {
                self.stats.vertices_ingested += 1;
                while self.window.is_full() {
                    self.evict_and_assign()?;
                }
                self.window.push_vertex(id, label);
            }
            StreamElement::AddEdge { source, target } => {
                self.stats.edges_ingested += 1;
                match self.window.push_edge(source, target) {
                    EdgePlacement::BothInWindow => {
                        self.stats.window_edges += 1;
                        if self.config.motif_clustering {
                            self.matcher.on_window_edge(&self.window, source, target);
                        }
                    }
                    EdgePlacement::OneInWindow { .. } | EdgePlacement::NeitherInWindow => {}
                }
            }
            StreamElement::RemoveVertex { id } => {
                let buffered = self.window.contains(id);
                // `delete` also purges external-edge bookkeeping pointing at
                // an already-evicted vertex, so later LDG scores stop
                // counting edges into a dead vertex.
                self.window.delete(id);
                if buffered {
                    let removed: FxHashSet<VertexId> = [id].into_iter().collect();
                    self.matcher.remove_vertices(&removed);
                } else {
                    self.partitioning.unassign(id);
                }
            }
            StreamElement::RemoveEdge { source, target } => {
                self.window.remove_edge(source, target);
                // Matches built over the edge no longer exist in the graph.
                self.matcher.remove_edge(source, target);
            }
            StreamElement::Relabel { id, label } => {
                if self.window.relabel(id, label) {
                    // Window matches containing the vertex carry signatures
                    // computed from the old label.
                    self.matcher.relabel(id);
                }
            }
        }
        Ok(())
    }
}

impl Partitioner for LoomPartitioner {
    fn name(&self) -> &'static str {
        "loom"
    }

    fn ingest(&mut self, element: &StreamElement) -> Result<()> {
        self.ingest_element(element)
    }

    fn ingest_batch(&mut self, batch: &[StreamElement]) -> Result<()> {
        // Amortised fast path: every vertex the chunk carries will either be
        // buffered or trigger exactly one eviction-assignment, so one
        // reservation covers the chunk's worth of assignment-table growth;
        // window inserts and signature updates then run in a dispatch-free
        // loop.
        self.batches_ingested += 1;
        let vertices = batch.iter().filter(|e| e.is_vertex()).count();
        self.partitioning.reserve(vertices);
        for element in batch {
            self.ingest_element(element)?;
        }
        Ok(())
    }

    fn snapshot(&self) -> Partitioning {
        self.partitioning.clone()
    }

    fn finish(&mut self) -> Result<Partitioning> {
        while !self.window.is_empty() {
            self.evict_and_assign()?;
        }
        Ok(self.partitioning.take())
    }

    fn stats(&self) -> PartitionerStats {
        PartitionerStats {
            vertices_ingested: self.stats.vertices_ingested,
            edges_ingested: self.stats.edges_ingested,
            batches_ingested: self.batches_ingested,
            assigned: self.partitioning.assigned_count(),
            buffered: self.window.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::generators::{motif_planted_graph, MotifPlantConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_graph::prelude::Label;
    use loom_graph::GraphStream;
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_motif::mining::MotifMiner;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_motif::workload::Workload;
    use loom_partition::metrics::evaluate;
    use loom_partition::traits::partition_stream;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn abc_tpstry() -> Tpstry {
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        MotifMiner::default().mine(&w).unwrap()
    }

    #[test]
    fn partitions_the_paper_example_completely() {
        let graph = paper_example_graph();
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let config = LoomConfig::new(2, graph.vertex_count()).with_window_size(4);
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        assert_eq!(part.assigned_count(), graph.vertex_count());
        assert_eq!(loom.name(), "loom");
        assert!(loom.buffered() == 0);
    }

    #[test]
    fn motif_instances_stay_within_one_partition() {
        // Plant abc paths in a background graph; with the abc workload LOOM
        // should keep the vast majority of planted instances un-split.
        let motif = path_graph(3, &[l(0), l(1), l(2)]);
        let (graph, instances) = motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: 400,
                background_edges: 800,
                instances_per_motif: 60,
                attachment_edges: 1,
                label_count: 4,
                seed: 3,
            },
            &[motif],
        )
        .unwrap();
        let tpstry = abc_tpstry();
        let config = LoomConfig::new(4, graph.vertex_count())
            .with_window_size(64)
            .with_motif_threshold(0.5);
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        assert_eq!(part.assigned_count(), graph.vertex_count());

        let intact = instances
            .iter()
            .filter(|inst| {
                let first = part.partition_of(inst.vertices[0]);
                inst.vertices.iter().all(|v| part.partition_of(*v) == first)
            })
            .count();
        let fraction = intact as f64 / instances.len() as f64;
        assert!(
            fraction > 0.8,
            "only {intact}/{} planted motifs kept intact",
            instances.len()
        );
        assert!(loom.loom_stats().clusters_assigned > 0);
        assert!(loom.loom_stats().motif_matches_found > 0);
    }

    #[test]
    fn keeps_more_motifs_intact_than_plain_ldg() {
        let motif = path_graph(3, &[l(0), l(1), l(2)]);
        let (graph, instances) = motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: 600,
                background_edges: 1_500,
                instances_per_motif: 80,
                attachment_edges: 2,
                label_count: 4,
                seed: 7,
            },
            &[motif],
        )
        .unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 11 });

        let intact_fraction = |part: &Partitioning| {
            instances
                .iter()
                .filter(|inst| {
                    let first = part.partition_of(inst.vertices[0]);
                    inst.vertices.iter().all(|v| part.partition_of(*v) == first)
                })
                .count() as f64
                / instances.len() as f64
        };

        let loom_part = {
            let config = LoomConfig::new(8, graph.vertex_count()).with_window_size(128);
            let mut loom = LoomPartitioner::new(config, &abc_tpstry()).unwrap();
            partition_stream(&mut loom, &stream).unwrap()
        };
        let ldg_part = {
            let mut ldg = loom_partition::ldg::LdgPartitioner::new(
                loom_partition::ldg::LdgConfig::new(8, graph.vertex_count()),
            )
            .unwrap();
            partition_stream(&mut ldg, &stream).unwrap()
        };
        assert!(
            intact_fraction(&loom_part) > intact_fraction(&ldg_part),
            "LOOM ({:.3}) should keep more motifs intact than LDG ({:.3})",
            intact_fraction(&loom_part),
            intact_fraction(&ldg_part)
        );
    }

    #[test]
    fn balance_stays_within_slack() {
        let motif = path_graph(3, &[l(0), l(1), l(2)]);
        let (graph, _) = motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: 500,
                background_edges: 1_000,
                instances_per_motif: 50,
                attachment_edges: 1,
                label_count: 4,
                seed: 5,
            },
            &[motif],
        )
        .unwrap();
        let config = LoomConfig::new(4, graph.vertex_count())
            .with_window_size(64)
            .with_slack(1.2);
        let mut loom = LoomPartitioner::new(config, &abc_tpstry()).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        for p in part.partitions() {
            assert!(
                part.size(p) <= part.capacity() + config_headroom(),
                "partition {p} exceeded capacity: {} > {}",
                part.size(p),
                part.capacity()
            );
        }
        assert!(part.imbalance() < 1.35, "imbalance {}", part.imbalance());
    }

    /// Clusters may overflow the soft capacity by at most one cluster's worth
    /// of vertices in pathological cases; keep a small allowance.
    fn config_headroom() -> usize {
        4
    }

    #[test]
    fn without_motif_clustering_behaves_like_windowed_ldg() {
        let graph = paper_example_graph();
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let config = LoomConfig::new(2, graph.vertex_count())
            .with_window_size(4)
            .without_motif_clustering();
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        assert_eq!(part.assigned_count(), graph.vertex_count());
        let stats = loom.loom_stats();
        assert_eq!(stats.clusters_assigned, 0);
        assert_eq!(stats.cluster_vertices_assigned, 0);
        assert_eq!(stats.single_vertices_assigned, graph.vertex_count());
    }

    #[test]
    fn oversized_clusters_are_split_for_balance() {
        // A long chain of overlapping ab edges forms one giant cluster; with
        // a tiny max_cluster_size it must be split, and everything must still
        // be assigned.
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let tpstry = MotifMiner::default().mine(&w).unwrap();
        let chain = path_graph(40, &[l(0), l(1)]);
        let config = LoomConfig::new(2, chain.vertex_count())
            .with_window_size(40)
            .with_max_cluster_size(4);
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let stream = GraphStream::from_graph(&chain, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        assert_eq!(part.assigned_count(), 40);
        // The giant merged cluster exceeds max_cluster_size, so splits happen.
        assert!(
            loom.loom_stats().clusters_split_for_balance > 0
                || loom.loom_stats().largest_cluster <= 4
        );
    }

    #[test]
    fn oversized_clusters_are_assigned_in_connected_chunks() {
        // A long ab chain forms one giant merged cluster. With chunked
        // splitting enabled the chain is assigned in connected pieces of at
        // most max_cluster_size vertices, so the number of chunks is bounded
        // below by len / max_cluster_size and every chunk stays connected in
        // the final placement (low cut).
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let tpstry = MotifMiner::default().mine(&w).unwrap();
        let chain = path_graph(64, &[l(0), l(1)]);
        let stream = GraphStream::from_graph(&chain, &StreamOrder::Bfs);

        let run = |split: bool| {
            let mut config = LoomConfig::new(4, chain.vertex_count())
                .with_window_size(64)
                .with_max_cluster_size(8)
                .with_slack(1.3);
            if !split {
                config = config.without_cluster_splitting();
            }
            let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
            let part = partition_stream(&mut loom, &stream).unwrap();
            (part, loom.loom_stats())
        };

        let (chunked_part, chunked_stats) = run(true);
        let (single_part, single_stats) = run(false);
        assert_eq!(chunked_part.assigned_count(), 64);
        assert_eq!(single_part.assigned_count(), 64);
        assert!(chunked_stats.clusters_split_for_balance > 0);
        assert!(single_stats.clusters_split_for_balance > 0);
        // Chunked splitting places multi-vertex groups; the no-split ablation
        // places the oversized cluster vertex by vertex.
        assert!(chunked_stats.clusters_assigned > 0);
        assert!(chunked_stats.largest_cluster <= 8);
        assert!(chunked_stats.cluster_vertices_assigned > single_stats.cluster_vertices_assigned);
        // Keeping chain pieces together should not cut more edges than the
        // vertex-by-vertex fallback.
        let chunked_cut = evaluate(&chain, &chunked_part).cut_edges;
        let single_cut = evaluate(&chain, &single_part).cut_edges;
        assert!(
            chunked_cut <= single_cut + 2,
            "chunked {chunked_cut} vs single {single_cut}"
        );
    }

    #[test]
    fn verification_mode_reports_counts_and_still_partitions() {
        let motif = path_graph(3, &[l(0), l(1), l(2)]);
        let (graph, _) = motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: 200,
                background_edges: 400,
                instances_per_motif: 30,
                attachment_edges: 1,
                label_count: 4,
                seed: 13,
            },
            &[motif],
        )
        .unwrap();
        let config = LoomConfig::new(4, graph.vertex_count())
            .with_window_size(64)
            .with_verification();
        let mut loom = LoomPartitioner::new(config, &abc_tpstry()).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        assert_eq!(part.assigned_count(), graph.vertex_count());
        let stats = loom.loom_stats();
        assert!(stats.verifications > 0);
        // With label-distinct path motifs the signature is effectively exact,
        // so no collisions are expected.
        assert_eq!(stats.false_positive_matches, 0);
    }

    #[test]
    fn quality_report_is_produced() {
        let graph = paper_example_graph();
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let config = LoomConfig::new(2, graph.vertex_count()).with_window_size(8);
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let part = partition_stream(&mut loom, &stream).unwrap();
        let report = evaluate(&graph, &part);
        assert_eq!(report.total_edges, graph.edge_count());
        assert!(report.cut_ratio <= 1.0);
    }

    #[test]
    fn mutation_stream_reclaims_window_and_load_accounting() {
        use loom_graph::VertexId;
        let tpstry = abc_tpstry();
        // Tiny window so vertex 1 gets evicted (assigned) early.
        let config = LoomConfig::new(2, 16).with_window_size(2);
        let mut loom = LoomPartitioner::new(config, &tpstry).unwrap();
        let add = |id: u64, label: u32| StreamElement::AddVertex {
            id: VertexId::new(id),
            label: l(label),
        };
        let edge = |a: u64, b: u64| StreamElement::AddEdge {
            source: VertexId::new(a),
            target: VertexId::new(b),
        };
        loom.ingest_batch(&[
            add(1, 0),
            add(2, 1),
            edge(1, 2),
            add(3, 2), // evicts vertex 1 -> assigned
            edge(2, 3),
        ])
        .unwrap();
        // The 1-2 ab match was assigned as a whole cluster at eviction time,
        // leaving only vertex 3 buffered.
        assert!(loom.partitioning().is_assigned(VertexId::new(1)));
        assert!(loom.partitioning().is_assigned(VertexId::new(2)));
        assert_eq!(loom.buffered(), 1);

        // Deleting a buffered vertex frees window capacity and drops its
        // matches; deleting an assigned vertex reclaims its load slot.
        loom.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(3),
        })
        .unwrap();
        assert_eq!(loom.buffered(), 0);
        assert!(loom
            .matcher
            .matches()
            .iter()
            .all(|m| !m.vertices.contains(&VertexId::new(3))));
        loom.ingest(&StreamElement::RemoveVertex {
            id: VertexId::new(1),
        })
        .unwrap();
        assert!(!loom.partitioning().is_assigned(VertexId::new(1)));

        // Edge removal and relabel keep the matcher consistent.
        loom.ingest_batch(&[
            add(4, 0),
            edge(4, 2),
            StreamElement::RemoveEdge {
                source: VertexId::new(4),
                target: VertexId::new(2),
            },
            StreamElement::Relabel {
                id: VertexId::new(2),
                label: l(3),
            },
        ])
        .unwrap();
        assert!(loom
            .matcher
            .matches()
            .iter()
            .all(|m| !m.vertices.contains(&VertexId::new(2))));
        let part = loom.finish().unwrap();
        // Vertices 2 and 4 remain buffered and get assigned at finish; 1 and
        // 3 were deleted.
        assert_eq!(part.assigned_count(), 2);
        assert!(part.partition_of(VertexId::new(1)).is_none());
        assert!(part.partition_of(VertexId::new(3)).is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let tpstry = abc_tpstry();
        let bad = LoomConfig::new(0, 100);
        assert!(LoomPartitioner::new(bad, &tpstry).is_err());
    }
}
