//! Workload-aware extension of the partitioner registry.
//!
//! [`loom_partition::spec::PartitionerRegistry::baselines`] can build the
//! workload-agnostic partitioners (Hash, LDG, Fennel) from declarative specs;
//! this module extends that registry with a builder for
//! [`PartitionerSpec::Loom`], which additionally needs the mined workload
//! summary. The experiment runner, benches and the top-level `loom::Session`
//! façade all construct partitioners through one of these registries rather
//! than hand-wired `match` arms.

use crate::index::FrequentMotifIndex;
use crate::loom::LoomPartitioner;
use loom_motif::tpstry::Tpstry;
use loom_partition::spec::{PartitionerRegistry, PartitionerSpec};
use loom_partition::traits::Partitioner;

/// A registry able to build every partitioner in the workspace: the three
/// baselines plus LOOM, whose frequent motif index is derived from `tpstry`
/// at each spec's own `motif_threshold`.
pub fn workload_registry(tpstry: &Tpstry) -> PartitionerRegistry {
    let tpstry = tpstry.clone();
    let mut registry = PartitionerRegistry::baselines();
    registry.register(move |spec| {
        Ok(match spec {
            PartitionerSpec::Loom(config) => {
                let index = FrequentMotifIndex::new(&tpstry, config.motif_threshold);
                Some(Box::new(LoomPartitioner::with_index(*config, index)?) as Box<dyn Partitioner>)
            }
            _ => None,
        })
    });
    registry
}

/// Like [`workload_registry`], but sharing one pre-built
/// [`FrequentMotifIndex`] across every LOOM instance the registry builds
/// (the spec's `motif_threshold` is ignored in favour of the index's own
/// threshold — use this when many runs share identical workload parameters).
pub fn workload_registry_with_index(index: FrequentMotifIndex) -> PartitionerRegistry {
    let mut registry = PartitionerRegistry::baselines();
    registry.register(move |spec| {
        Ok(match spec {
            PartitionerSpec::Loom(config) => Some(Box::new(LoomPartitioner::with_index(
                *config,
                index.clone(),
            )?) as Box<dyn Partitioner>),
            _ => None,
        })
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::ordering::StreamOrder;
    use loom_graph::GraphStream;
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_motif::mining::MotifMiner;
    use loom_partition::spec::LoomConfig;
    use loom_partition::traits::partition_stream;

    #[test]
    fn loom_builds_from_spec_through_the_registry() {
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let graph = paper_example_graph();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let registry = workload_registry(&tpstry);
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut partitioner = registry.build(&spec).unwrap();
        assert_eq!(partitioner.name(), "loom");
        let partitioning = partition_stream(partitioner.as_mut(), &stream).unwrap();
        assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    }

    #[test]
    fn baselines_still_build_through_the_extended_registry() {
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let registry = workload_registry(&tpstry);
        let spec = PartitionerSpec::Ldg(loom_partition::ldg::LdgConfig::new(4, 100));
        assert_eq!(registry.build(&spec).unwrap().name(), "ldg");
    }

    #[test]
    fn shared_index_registry_builds_loom() {
        let tpstry = MotifMiner::default()
            .mine(&paper_example_workload())
            .unwrap();
        let index = FrequentMotifIndex::new(&tpstry, 0.3);
        let registry = workload_registry_with_index(index);
        let spec = PartitionerSpec::Loom(LoomConfig::new(2, 8).with_window_size(4));
        assert_eq!(registry.build(&spec).unwrap().name(), "loom");
    }
}
