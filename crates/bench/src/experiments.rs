//! The experiment suite of DESIGN.md §6.
//!
//! Each experiment id maps to a function producing one or more [`Table`]s;
//! [`run_experiment`] dispatches on the id. The [`Scale`] knob lets CI and
//! the test suite run the same code paths at a fraction of the full size.

use crate::scenarios;
use loom_core::{FrequentMotifIndex, LoomBuilder};
use loom_graph::ordering::StreamOrder;
use loom_graph::{GraphStream, LabelledGraph};
use loom_motif::fixtures::{fig3_stream_graph, paper_example_workload};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_partition::metrics::evaluate;
use loom_partition::traits::partition_stream;
use loom_sim::executor::QueryExecutor;
use loom_sim::report::{comparison_table, Table};
use loom_sim::runner::{ExperimentConfig, ExperimentRunner, PartitionerKind};
use loom_sim::store::PartitionedStore;
use std::time::Instant;

/// How large the experiment inputs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for CI / smoke runs (seconds).
    Quick,
    /// The sizes recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    fn graph_vertices(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }

    fn motif_instances(self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Full => 800,
        }
    }

    fn query_samples(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Full => 200,
        }
    }

    fn k_values(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![4, 8],
            Scale::Full => vec![4, 8, 16, 32],
        }
    }

    fn throughput_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2_000, 5_000],
            Scale::Full => vec![10_000, 20_000, 50_000, 100_000],
        }
    }
}

/// The experiments defined in DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// P-Fig2: the TPSTry++ mined from the paper's Figure 1 workload.
    Fig2,
    /// P-Fig3: motif matching over a stream with shared sub-structure.
    Fig3,
    /// E-T1: edge-cut and balance per partitioner across graph families / k.
    T1,
    /// E-T2: inter-partition traversal probability per partitioner.
    T2,
    /// E-T3: workload skew sensitivity.
    T3,
    /// E-F1: window size sweep.
    F1,
    /// E-F2: motif frequency threshold sweep.
    F2,
    /// E-F3: stream ordering sensitivity.
    F3,
    /// E-F4: partitioning throughput vs graph size.
    F4,
    /// E-F5: LOOM ablations.
    F5,
    /// E-F6: TPSTry++ construction cost vs workload size.
    F6,
    /// E-F7: dynamic growth — streaming adaptation vs periodic offline
    /// repartitioning (cost, quality, churn).
    F7,
    /// E-F8: signature false-positive rate under exact verification.
    F8,
}

impl ExperimentId {
    /// Every experiment, in presentation order.
    pub fn all() -> Vec<ExperimentId> {
        vec![
            ExperimentId::Fig2,
            ExperimentId::Fig3,
            ExperimentId::T1,
            ExperimentId::T2,
            ExperimentId::T3,
            ExperimentId::F1,
            ExperimentId::F2,
            ExperimentId::F3,
            ExperimentId::F4,
            ExperimentId::F5,
            ExperimentId::F6,
            ExperimentId::F7,
            ExperimentId::F8,
        ]
    }

    /// Parse a CLI name such as `t1` or `fig2`.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        match name.to_ascii_lowercase().as_str() {
            "fig2" => Some(ExperimentId::Fig2),
            "fig3" => Some(ExperimentId::Fig3),
            "t1" => Some(ExperimentId::T1),
            "t2" => Some(ExperimentId::T2),
            "t3" => Some(ExperimentId::T3),
            "f1" => Some(ExperimentId::F1),
            "f2" => Some(ExperimentId::F2),
            "f3" => Some(ExperimentId::F3),
            "f4" => Some(ExperimentId::F4),
            "f5" => Some(ExperimentId::F5),
            "f6" => Some(ExperimentId::F6),
            "f7" => Some(ExperimentId::F7),
            "f8" => Some(ExperimentId::F8),
            _ => None,
        }
    }

    /// The CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::T1 => "t1",
            ExperimentId::T2 => "t2",
            ExperimentId::T3 => "t3",
            ExperimentId::F1 => "f1",
            ExperimentId::F2 => "f2",
            ExperimentId::F3 => "f3",
            ExperimentId::F4 => "f4",
            ExperimentId::F5 => "f5",
            ExperimentId::F6 => "f6",
            ExperimentId::F7 => "f7",
            ExperimentId::F8 => "f8",
        }
    }
}

/// Run one experiment and return its tables.
pub fn run_experiment(id: ExperimentId, scale: Scale) -> Vec<Table> {
    match id {
        ExperimentId::Fig2 => fig2(),
        ExperimentId::Fig3 => fig3(),
        ExperimentId::T1 => t1(scale),
        ExperimentId::T2 => t2(scale),
        ExperimentId::T3 => t3(scale),
        ExperimentId::F1 => f1(scale),
        ExperimentId::F2 => f2(scale),
        ExperimentId::F3 => f3(scale),
        ExperimentId::F4 => f4(scale),
        ExperimentId::F5 => f5(scale),
        ExperimentId::F6 => f6(scale),
        ExperimentId::F7 => f7(scale),
        ExperimentId::F8 => f8(scale),
    }
}

fn runner(k: u32, scale: Scale) -> ExperimentRunner {
    ExperimentRunner::new(ExperimentConfig {
        k,
        window_size: 256,
        motif_threshold: 0.3,
        query_samples: scale.query_samples(),
        ..ExperimentConfig::new(k)
    })
}

/// P-Fig2: the TPSTry++ for the paper's example workload.
fn fig2() -> Vec<Table> {
    let workload = paper_example_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let interner = loom_graph::LabelInterner::with_alphabet(4);
    let mut table = Table::new(
        "P-Fig2: TPSTry++ for the Figure 1 workload (q1 square, q2 abc, q3 abcd)",
        &[
            "node",
            "labels",
            "|V|",
            "|E|",
            "p-value",
            "supporting queries",
        ],
    );
    let mut nodes: Vec<_> = tpstry.nodes().collect();
    nodes.sort_by(|a, b| {
        a.vertex_count()
            .cmp(&b.vertex_count())
            .then(a.edge_count().cmp(&b.edge_count()))
            .then(a.id().cmp(&b.id()))
    });
    for node in nodes {
        let labels: Vec<&str> = node
            .graph()
            .vertices_sorted()
            .iter()
            .map(|&v| {
                interner
                    .name(node.graph().label(v).expect("labelled"))
                    .unwrap_or("?")
            })
            .collect();
        let mut queries: Vec<String> = node
            .supporting_queries()
            .iter()
            .map(|q| q.to_string())
            .collect();
        queries.sort();
        table.push_row(vec![
            node.id().to_string(),
            labels.join("-"),
            node.vertex_count().to_string(),
            node.edge_count().to_string(),
            format!("{:.3}", tpstry.p_value(node.id())),
            queries.join(" "),
        ]);
    }
    vec![table]
}

/// P-Fig3: stream motif matching with shared sub-structure.
fn fig3() -> Vec<Table> {
    use loom_core::matcher::StreamMotifMatcher;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_partition::window::StreamWindow;

    let abc = PatternQuery::path(
        QueryId::new(0),
        &[
            loom_graph::Label::new(0),
            loom_graph::Label::new(1),
            loom_graph::Label::new(2),
        ],
    )
    .expect("valid query");
    let workload = Workload::uniform(vec![abc]).expect("valid workload");
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let index = FrequentMotifIndex::new(&tpstry, 0.5);
    let mut matcher = StreamMotifMatcher::new(index);

    let (graph, [a, b, c1, c2]) = fig3_stream_graph();
    let mut window = StreamWindow::new(16);
    let mut table = Table::new(
        "P-Fig3: motif matching over the graph-stream (two abc instances share the a-b edge)",
        &["step", "edge", "matches tracked", "largest cluster"],
    );
    for v in [a, b, c1, c2] {
        window.push_vertex(v, graph.label(v).expect("labelled"));
    }
    for (step, (x, y)) in [(a, b), (b, c1), (b, c2)].into_iter().enumerate() {
        window.push_edge(x, y);
        matcher.on_window_edge(&window, x, y);
        let largest = [a, b, c1, c2]
            .iter()
            .map(|&v| matcher.cluster_for(v, true).len())
            .max()
            .unwrap_or(0);
        table.push_row(vec![
            (step + 1).to_string(),
            format!("({x}, {y})"),
            matcher.match_count().to_string(),
            largest.to_string(),
        ]);
    }
    vec![table]
}

/// E-T1: structural quality (cut, balance) per partitioner, graph family, k.
fn t1(scale: Scale) -> Vec<Table> {
    let n = scale.graph_vertices();
    let graphs: Vec<(&str, LabelledGraph)> = vec![
        ("barabasi-albert", scenarios::social_graph(n, 21)),
        ("erdos-renyi", scenarios::random_graph(n, 22)),
        ("community", scenarios::community(n, 23)),
    ];
    let workload = scenarios::motif_workload();
    let mut tables = Vec::new();
    for (name, graph) in &graphs {
        let mut table = Table::new(
            format!(
                "E-T1: partition quality on {name} (|V|={}, |E|={})",
                graph.vertex_count(),
                graph.edge_count()
            ),
            &[
                "k",
                "partitioner",
                "cut_ratio",
                "imbalance",
                "comm_vol",
                "part_ms",
            ],
        );
        for k in scale.k_values() {
            let results = runner(k, scale)
                .run_many(
                    &PartitionerKind::standard_set(),
                    graph,
                    &StreamOrder::Random { seed: 77 },
                    &workload,
                )
                .expect("experiment runs");
            for r in results {
                table.push_row(vec![
                    k.to_string(),
                    r.partitioner,
                    format!("{:.4}", r.cut_ratio),
                    format!("{:.3}", r.imbalance),
                    r.communication_volume.to_string(),
                    format!("{:.1}", r.partition_time_ms),
                ]);
            }
        }
        tables.push(table);
    }
    tables
}

/// E-T2: inter-partition traversal probability on the motif-heavy scenario.
fn t2(scale: Scale) -> Vec<Table> {
    let (graph, workload) =
        scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 31);
    let results = runner(8, scale)
        .run_many(
            &PartitionerKind::standard_set(),
            &graph,
            &StreamOrder::Random { seed: 13 },
            &workload,
        )
        .expect("experiment runs");
    vec![comparison_table(
        "E-T2: workload-aware quality on the motif-planted graph (k = 8, random order)",
        &results,
    )]
}

/// E-T3: workload skew sensitivity (Zipf exponent sweep).
fn t3(scale: Scale) -> Vec<Table> {
    let graph = scenarios::community(scale.graph_vertices(), 41);
    let mut table = Table::new(
        "E-T3: workload skew sensitivity (community graph, k = 8)",
        &[
            "zipf_s",
            "partitioner",
            "ipt_prob",
            "local_only",
            "latency_us",
        ],
    );
    for s in [0.0, 0.5, 1.0, 1.5] {
        let workload = scenarios::generated_workload(20, s, 5);
        let results = runner(8, scale)
            .run_many(
                &[PartitionerKind::Ldg, PartitionerKind::Loom],
                &graph,
                &StreamOrder::Random { seed: 3 },
                &workload,
            )
            .expect("experiment runs");
        for r in results {
            table.push_row(vec![
                format!("{s:.1}"),
                r.partitioner,
                format!("{:.4}", r.ipt_probability),
                format!("{:.3}", r.local_only_fraction),
                format!("{:.1}", r.mean_latency_us),
            ]);
        }
    }
    vec![table]
}

/// E-F1: window size sweep for LOOM.
fn f1(scale: Scale) -> Vec<Table> {
    let (graph, workload) =
        scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 51);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 7 });
    // One compiled plan per workload query, reused across every window cell.
    let plans = std::sync::Arc::new(loom_sim::plan::PlanCache::compile(
        &loom_sim::plan::QueryPlanner::default(),
        &workload,
        &loom_sim::plan::GraphStatistics::from_graph(&graph),
    ));
    let executor = QueryExecutor::default().with_plan_cache(plans);
    let mut table = Table::new(
        "E-F1: LOOM window size sweep (motif-planted graph, k = 8)",
        &[
            "window",
            "cut_ratio",
            "ipt_prob",
            "local_only",
            "matches",
            "clusters",
            "part_ms",
            "v/s",
        ],
    );
    for window in [16usize, 64, 256, 1024] {
        let mut loom = LoomBuilder::new(8, graph.vertex_count())
            .window_size(window)
            .motif_threshold(0.3)
            .build(&tpstry)
            .expect("valid config");
        let start = Instant::now();
        let partitioning = partition_stream(&mut loom, &stream).expect("stream consumed");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let quality = evaluate(&graph, &partitioning);
        let store = PartitionedStore::new(graph.clone(), partitioning);
        let metrics = executor.execute_workload(&store, &workload, scale.query_samples(), 17);
        let stats = loom.loom_stats();
        table.push_row(vec![
            window.to_string(),
            format!("{:.4}", quality.cut_ratio),
            format!("{:.4}", metrics.inter_partition_probability()),
            format!("{:.3}", metrics.local_only_fraction()),
            stats.motif_matches_found.to_string(),
            stats.clusters_assigned.to_string(),
            format!("{elapsed_ms:.1}"),
            format!(
                "{:.0}",
                graph.vertex_count() as f64 / (elapsed_ms / 1_000.0).max(1e-9)
            ),
        ]);
    }
    vec![table]
}

/// E-F2: motif frequency threshold sweep.
fn f2(scale: Scale) -> Vec<Table> {
    let (graph, _) = scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 61);
    let workload = scenarios::generated_workload(20, 1.0, 9);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 7 });
    let plans = std::sync::Arc::new(loom_sim::plan::PlanCache::compile(
        &loom_sim::plan::QueryPlanner::default(),
        &workload,
        &loom_sim::plan::GraphStatistics::from_graph(&graph),
    ));
    let executor = QueryExecutor::default().with_plan_cache(plans);
    let mut table = Table::new(
        "E-F2: motif frequency threshold sweep (generated workload, k = 8)",
        &[
            "T",
            "frequent motifs",
            "ipt_prob",
            "local_only",
            "clusters",
            "part_ms",
        ],
    );
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let index = FrequentMotifIndex::new(&tpstry, threshold);
        let motif_count = index.motif_count();
        let mut loom = LoomBuilder::new(8, graph.vertex_count())
            .window_size(256)
            .motif_threshold(threshold)
            .share_index(index)
            .build_with_shared_index()
            .expect("valid config");
        let start = Instant::now();
        let partitioning = partition_stream(&mut loom, &stream).expect("stream consumed");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let store = PartitionedStore::new(graph.clone(), partitioning);
        let metrics = executor.execute_workload(&store, &workload, scale.query_samples(), 19);
        table.push_row(vec![
            format!("{threshold:.1}"),
            motif_count.to_string(),
            format!("{:.4}", metrics.inter_partition_probability()),
            format!("{:.3}", metrics.local_only_fraction()),
            loom.loom_stats().clusters_assigned.to_string(),
            format!("{elapsed_ms:.1}"),
        ]);
    }
    vec![table]
}

/// E-F3: stream ordering sensitivity.
fn f3(scale: Scale) -> Vec<Table> {
    let (graph, workload) =
        scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 71);
    let mut table = Table::new(
        "E-F3: stream ordering sensitivity (motif-planted graph, k = 8)",
        &[
            "ordering",
            "partitioner",
            "cut_ratio",
            "ipt_prob",
            "local_only",
        ],
    );
    let orderings = [
        StreamOrder::Random { seed: 2 },
        StreamOrder::Bfs,
        StreamOrder::Dfs,
        StreamOrder::Adversarial,
        StreamOrder::Stochastic {
            seed: 2,
            jump_probability: 0.05,
        },
    ];
    for order in orderings {
        let results = runner(8, scale)
            .run_many(
                &[
                    PartitionerKind::Ldg,
                    PartitionerKind::Fennel,
                    PartitionerKind::Loom,
                ],
                &graph,
                &order,
                &workload,
            )
            .expect("experiment runs");
        for r in results {
            table.push_row(vec![
                order.name().to_owned(),
                r.partitioner,
                format!("{:.4}", r.cut_ratio),
                format!("{:.4}", r.ipt_probability),
                format!("{:.3}", r.local_only_fraction),
            ]);
        }
    }
    vec![table]
}

/// E-F4: partitioning throughput vs graph size (no query execution).
fn f4(scale: Scale) -> Vec<Table> {
    let workload = scenarios::motif_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let mut table = Table::new(
        "E-F4: partitioning throughput vs graph size (BA graphs, k = 8)",
        &["|V|", "partitioner", "part_ms", "vertices/s"],
    );
    for n in scale.throughput_sizes() {
        let graph = scenarios::social_graph(n, 81);
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 5 });
        let run = runner(8, scale);
        for kind in [
            PartitionerKind::Hash,
            PartitionerKind::Ldg,
            PartitionerKind::Fennel,
            PartitionerKind::Loom,
            PartitionerKind::Offline,
        ] {
            let start = Instant::now();
            let partitioning = run
                .partition_with(kind, &graph, &stream, &tpstry)
                .expect("partitioner runs");
            let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
            assert_eq!(partitioning.assigned_count(), graph.vertex_count());
            table.push_row(vec![
                n.to_string(),
                kind.name().to_owned(),
                format!("{elapsed_ms:.1}"),
                format!("{:.0}", n as f64 / (elapsed_ms / 1_000.0).max(1e-9)),
            ]);
        }
    }
    vec![table]
}

/// E-F5: LOOM ablations.
fn f5(scale: Scale) -> Vec<Table> {
    let (graph, workload) =
        scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 91);
    let results = runner(8, scale)
        .run_many(
            &PartitionerKind::ablation_set(),
            &graph,
            &StreamOrder::Random { seed: 23 },
            &workload,
        )
        .expect("experiment runs");
    vec![comparison_table(
        "E-F5: LOOM ablations (motif-planted graph, k = 8, random order)",
        &results,
    )]
}

/// E-F6: TPSTry++ construction cost vs workload size.
fn f6(scale: Scale) -> Vec<Table> {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![10, 50, 100],
        Scale::Full => vec![10, 50, 100, 250, 500],
    };
    let mut table = Table::new(
        "E-F6: TPSTry++ construction cost vs workload size",
        &["queries", "nodes", "frequent@0.3", "build_ms"],
    );
    for size in sizes {
        let workload = scenarios::generated_workload(size, 1.0, 3);
        let start = Instant::now();
        let tpstry = MotifMiner::default()
            .mine(&workload)
            .expect("mining succeeds");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        table.push_row(vec![
            size.to_string(),
            tpstry.node_count().to_string(),
            tpstry.frequent_motifs(0.3).len().to_string(),
            format!("{elapsed_ms:.2}"),
        ]);
    }
    vec![table]
}

/// E-F7: dynamic growth — streaming adaptation vs periodic offline
/// repartitioning.
fn f7(scale: Scale) -> Vec<Table> {
    use loom_partition::ldg::{LdgConfig, LdgPartitioner};
    use loom_sim::growth::GrowthScenario;

    let (graph, workload) =
        scenarios::motif_scenario(scale.graph_vertices(), scale.motif_instances(), 101);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 7 });
    let scenario = GrowthScenario::new(8, 5);

    let mut table = Table::new(
        "E-F7: dynamic growth — streaming adaptation vs periodic offline repartitioning",
        &[
            "strategy",
            "progress",
            "|V| so far",
            "cut_ratio",
            "imbalance",
            "cumulative_ms",
            "moved",
            "churn",
        ],
    );
    let mut rows = Vec::new();
    {
        let mut ldg =
            LdgPartitioner::new(LdgConfig::new(8, graph.vertex_count())).expect("valid config");
        rows.extend(scenario.run_streaming(&mut ldg, &stream).expect("runs"));
    }
    {
        let mut loom = LoomBuilder::new(8, graph.vertex_count())
            .window_size(256)
            .motif_threshold(0.3)
            .build(&tpstry)
            .expect("valid config");
        rows.extend(scenario.run_streaming(&mut loom, &stream).expect("runs"));
    }
    rows.extend(scenario.run_offline_periodic(&stream).expect("runs"));
    for c in rows {
        table.push_row(vec![
            c.strategy,
            format!("{:.2}", c.progress),
            c.vertices.to_string(),
            format!("{:.4}", c.cut_ratio),
            format!("{:.3}", c.imbalance),
            format!("{:.1}", c.cumulative_time_ms),
            c.moved_vertices.to_string(),
            format!("{:.3}", c.churn),
        ]);
    }
    vec![table]
}

/// E-F8: signature false-positive rate measured with exact verification.
fn f8(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "E-F8: signature match verification (false-positive rate of the non-authoritative check)",
        &[
            "workload",
            "matches (unverified)",
            "verifications",
            "false positives",
            "fp rate",
            "part_ms (verify on)",
        ],
    );
    let cases: Vec<(&str, Workload)> = vec![
        ("planted abc+square", scenarios::motif_workload()),
        (
            "generated (20 queries)",
            scenarios::generated_workload(20, 1.0, 5),
        ),
    ];
    for (name, workload) in cases {
        let (graph, _) =
            scenarios::motif_scenario(scale.graph_vertices() / 2, scale.motif_instances() / 2, 111);
        let tpstry = MotifMiner::default()
            .mine(&workload)
            .expect("mining succeeds");
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 9 });

        let unverified_matches = {
            let mut loom = LoomBuilder::new(8, graph.vertex_count())
                .window_size(256)
                .motif_threshold(0.3)
                .build(&tpstry)
                .expect("valid config");
            let _ = partition_stream(&mut loom, &stream).expect("stream consumed");
            loom.loom_stats().motif_matches_found
        };

        let mut loom = LoomBuilder::new(8, graph.vertex_count())
            .window_size(256)
            .motif_threshold(0.3)
            .verify_matches()
            .build(&tpstry)
            .expect("valid config");
        let start = Instant::now();
        let _ = partition_stream(&mut loom, &stream).expect("stream consumed");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let stats = loom.loom_stats();
        let fp_rate = if stats.verifications == 0 {
            0.0
        } else {
            stats.false_positive_matches as f64 / stats.verifications as f64
        };
        table.push_row(vec![
            name.to_owned(),
            unverified_matches.to_string(),
            stats.verifications.to_string(),
            stats.false_positive_matches.to_string(),
            format!("{fp_rate:.4}"),
            format!("{elapsed_ms:.1}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for id in ExperimentId::all() {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("nope"), None);
        assert_eq!(ExperimentId::all().len(), 13);
    }

    #[test]
    fn fig2_and_fig3_tables_have_content() {
        let fig2_tables = run_experiment(ExperimentId::Fig2, Scale::Quick);
        assert_eq!(fig2_tables.len(), 1);
        assert!(fig2_tables[0].row_count() >= 10);
        let fig3_tables = run_experiment(ExperimentId::Fig3, Scale::Quick);
        assert_eq!(fig3_tables[0].row_count(), 3);
        let rendered = fig3_tables[0].render();
        assert!(rendered.contains("matches tracked"));
    }

    #[test]
    fn f6_table_grows_with_workload_size() {
        let tables = run_experiment(ExperimentId::F6, Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 3);
    }
}
