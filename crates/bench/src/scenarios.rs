//! Shared graph / workload scenarios used by the experiments and benches.
//!
//! Keeping the scenario constructors in one place guarantees that the
//! Criterion benches and the `experiments` binary measure exactly the same
//! inputs.

use loom_graph::generators::motif_planted::MotifPlantConfig;
use loom_graph::generators::regular::{cycle_graph, path_graph};
use loom_graph::generators::{
    barabasi_albert, community_graph, erdos_renyi, motif_planted_graph, CommunityConfig,
    GeneratorConfig,
};
use loom_graph::{Label, LabelledGraph};
use loom_motif::query::{PatternQuery, QueryId};
use loom_motif::workload::{Workload, WorkloadGenerator};

fn l(x: u32) -> Label {
    Label::new(x)
}

/// A Barabási–Albert "social network" graph.
pub fn social_graph(vertices: usize, seed: u64) -> LabelledGraph {
    barabasi_albert(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        3,
    )
    .expect("valid BA parameters")
}

/// An Erdős–Rényi graph with average degree ~6.
pub fn random_graph(vertices: usize, seed: u64) -> LabelledGraph {
    erdos_renyi(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        vertices * 3,
    )
    .expect("valid ER parameters")
}

/// A planted-partition community graph with 8 communities.
pub fn community(vertices: usize, seed: u64) -> LabelledGraph {
    community_graph(CommunityConfig {
        vertices,
        communities: 8,
        p_in: (12.0 / vertices as f64).min(0.5),
        p_out: (1.0 / vertices as f64).min(0.05),
        label_count: 4,
        seed,
    })
    .expect("valid community parameters")
    .0
}

/// The canonical motif-heavy scenario: a background graph with planted `abc`
/// paths and `abab` squares, plus the workload that traverses them.
pub fn motif_scenario(
    background_vertices: usize,
    instances_per_motif: usize,
    seed: u64,
) -> (LabelledGraph, Workload) {
    let abc = path_graph(3, &[l(0), l(1), l(2)]);
    let square = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
    let (graph, _) = motif_planted_graph(
        &MotifPlantConfig {
            background_vertices,
            background_edges: background_vertices * 5 / 2,
            instances_per_motif,
            attachment_edges: 1,
            // A wider background alphabet keeps the pattern queries selective:
            // accidental motif occurrences outside the planted instances are
            // rare, so the workload-locality metrics are meaningful.
            label_count: 8,
            seed,
        },
        &[abc, square],
    )
    .expect("valid plant parameters");
    (graph, motif_workload())
}

/// The workload matching [`motif_scenario`]: abc-path, abab-square and a-b
/// queries with skewed frequencies.
pub fn motif_workload() -> Workload {
    let q_abc = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).expect("valid");
    let q_square = PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)]).expect("valid");
    let q_ab = PatternQuery::path(QueryId::new(2), &[l(0), l(1)]).expect("valid");
    Workload::new(vec![(q_abc, 4.0), (q_square, 2.0), (q_ab, 1.0)]).expect("valid workload")
}

/// A generated workload with `query_count` queries and the given Zipf skew.
pub fn generated_workload(query_count: usize, zipf_exponent: f64, seed: u64) -> Workload {
    WorkloadGenerator {
        query_count,
        label_count: 4,
        core_count: 3,
        core_length: 3,
        max_extension: 2,
        zipf_exponent,
        seed,
    }
    .generate()
    .expect("valid workload generator parameters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_at_small_scale() {
        assert_eq!(social_graph(200, 1).vertex_count(), 200);
        assert_eq!(random_graph(200, 1).vertex_count(), 200);
        assert_eq!(community(200, 1).vertex_count(), 200);
        let (g, w) = motif_scenario(100, 10, 1);
        assert!(g.vertex_count() > 100);
        assert_eq!(w.queries().len(), 3);
        assert_eq!(generated_workload(10, 1.0, 1).queries().len(), 10);
    }
}
