//! # loom-bench
//!
//! Experiment definitions and benchmark harness for the LOOM reproduction.
//!
//! The paper (a work-in-progress workshop paper) contains no result tables;
//! DESIGN.md §6 defines the experiment suite this crate regenerates — one
//! function per experiment, each returning renderable [`Table`]s. The
//! `experiments` binary is a thin CLI over [`experiments`]; the Criterion
//! benches in `benches/` time the hot paths the experiments rely on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod scenarios;

pub use experiments::{run_experiment, ExperimentId, Scale};
pub use loom_sim::report::Table;
