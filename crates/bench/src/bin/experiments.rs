//! Regenerate the experiment tables of DESIGN.md §6 / EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p loom-bench --bin experiments              # all, full scale
//! cargo run --release -p loom-bench --bin experiments -- --quick   # all, reduced scale
//! cargo run --release -p loom-bench --bin experiments -- --table t2
//! cargo run --release -p loom-bench --bin experiments -- --table f3 --quick --csv
//! ```

use loom_bench::{run_experiment, ExperimentId, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut csv = false;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--csv" => csv = true,
            "--table" | "-t" => {
                let Some(name) = iter.next() else {
                    eprintln!("--table requires an experiment id (e.g. t1, f3, fig2)");
                    return ExitCode::FAILURE;
                };
                match ExperimentId::parse(name) {
                    Some(id) => selected.push(id),
                    None => {
                        eprintln!(
                            "unknown experiment {name:?}; known: {}",
                            ExperimentId::all()
                                .iter()
                                .map(|i| i.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick|--full] [--csv] [--table <id>]...\n\
                     experiments: {}",
                    ExperimentId::all()
                        .iter()
                        .map(|i| i.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if selected.is_empty() {
        selected = ExperimentId::all();
    }

    println!(
        "LOOM experiment suite — scale: {}\n",
        if scale == Scale::Quick {
            "quick"
        } else {
            "full"
        }
    );
    for id in selected {
        let started = std::time::Instant::now();
        let tables = run_experiment(id, scale);
        for table in &tables {
            if csv {
                println!("# {}\n{}", table.title(), table.to_csv());
            } else {
                println!("{}", table.render());
            }
        }
        eprintln!(
            "[{}] completed in {:.1}s",
            id.name(),
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
