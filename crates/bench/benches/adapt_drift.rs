//! Workload drift: static vs adaptive serving across a phase change.
//!
//! The `loom-adapt` claim, measured: one graph, two workload phases with
//! disjoint hot motif families ([`DriftScenario`]). Both arms start from the
//! same phase-A LOOM placement; when the traffic flips to phase B the static
//! arm keeps serving the stale placement while the adaptive arm tracks the
//! drift, migrates a bounded batch of vertices and publishes a new epoch.
//! A freshly phase-B-mined placement provides the reference line.
//!
//! Besides the Criterion-style wall-clock timings, the bench emits
//! `BENCH_adapt.json` at the workspace root: per `(strategy, phase)` cell the
//! remote-hop fraction, modelled p99 and QPS, so the adaptation story has
//! machine-readable data points across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_adapt::adaptive::{AdaptConfig, AdaptiveServing};
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::{GraphStream, LabelledGraph};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_partition::migrate::MigrationConfig;
use loom_partition::partition::Partitioning;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::drift::DriftScenario;
use loom_sim::executor::QueryMode;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;

const K: u32 = 4;
const SAMPLES: usize = 400;
const SEED: u64 = 42;

fn serve_config() -> ServeConfig {
    ServeConfig::new(K as usize).with_mode(QueryMode::Rooted { seed_count: 3 })
}

fn mine(graph: &LabelledGraph, stream: &GraphStream, workload: &Workload) -> Partitioning {
    let tpstry = MotifMiner::default()
        .mine(workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(K, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut partitioner = registry.build(&spec).expect("buildable spec");
    partition_stream(partitioner.as_mut(), stream).expect("stream partitions")
}

fn measure(graph: &LabelledGraph, partitioning: &Partitioning, workload: &Workload) -> ServeReport {
    let store = Arc::new(ShardedStore::from_parts(graph, partitioning));
    ServeEngine::new(serve_config()).serve_batch(&store, workload, SAMPLES, SEED)
}

/// Run the adaptive arm through the phase change and return its placement.
fn adapt(graph: &LabelledGraph, start: &Partitioning, scenario: &DriftScenario) -> Partitioning {
    let config = AdaptConfig {
        migration: MigrationConfig::new(graph.vertex_count() / 8),
        max_rounds: 6,
        ..AdaptConfig::default()
    };
    let mut adaptive = AdaptiveServing::new(
        graph.clone(),
        start.clone(),
        scenario.phase_a(),
        serve_config(),
        config,
    );
    let phase_b = scenario.phase_b();
    for seed in 10..16u64 {
        let (_, outcome) = adaptive.serve(&phase_b, 200, seed).expect("serves");
        if outcome.is_some() && !adaptive.tracker().is_drifted() && seed >= 12 {
            break;
        }
    }
    adaptive.partitioning().clone()
}

fn cell(strategy: &str, phase: &str, report: &ServeReport) -> String {
    format!(
        concat!(
            "    {{\"strategy\": \"{}\", \"phase\": \"{}\", ",
            "\"remote_hop_fraction\": {:.4}, \"p99_us\": {:.2}, ",
            "\"p50_us\": {:.2}, \"qps\": {:.2}}}"
        ),
        strategy,
        phase,
        report.remote_hop_fraction(),
        report.p99_latency_us,
        report.p50_latency_us,
        report.aggregate_qps(),
    )
}

struct Setup {
    graph: LabelledGraph,
    scenario: DriftScenario,
    static_part: Partitioning,
    adaptive_part: Partitioning,
    fresh_part: Partitioning,
}

fn setup() -> Setup {
    let scenario = DriftScenario::small(17);
    let (graph, _) = scenario.build_graph().expect("scenario builds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let static_part = mine(&graph, &stream, &scenario.phase_a());
    let fresh_part = mine(&graph, &stream, &scenario.phase_b());
    let adaptive_part = adapt(&graph, &static_part, &scenario);
    Setup {
        graph,
        scenario,
        static_part,
        adaptive_part,
        fresh_part,
    }
}

/// Sweep both arms over both phases, print the table, persist the JSON.
fn sweep_and_persist(setup: &Setup) {
    let phase_a = setup.scenario.phase_a();
    let phase_b = setup.scenario.phase_b();
    let arms: [(&str, &Partitioning); 3] = [
        ("static", &setup.static_part),
        ("adaptive", &setup.adaptive_part),
        ("fresh_mine", &setup.fresh_part),
    ];
    let mut cells = Vec::new();
    for (name, partitioning) in arms {
        for (phase, workload) in [("A", &phase_a), ("B", &phase_b)] {
            let report = measure(&setup.graph, partitioning, workload);
            println!(
                "adapt_drift {name}/phase-{phase}: remote hops {:.1}%, \
                 p99 {:.0} us, {:.0} qps",
                report.remote_hop_fraction() * 100.0,
                report.p99_latency_us,
                report.aggregate_qps(),
            );
            cells.push(cell(name, phase, &report));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"adapt_drift\",\n  \"samples\": {SAMPLES},\n  \
         \"seed\": {SEED},\n  \"partitions\": {K},\n  \"mode\": \
         \"rooted(seed_count=3)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_adapt.json");
    std::fs::write(&path, json).expect("BENCH_adapt.json is writable");
    println!("wrote {}", path.display());
}

fn bench_adapt(c: &mut Criterion) {
    let setup = setup();
    sweep_and_persist(&setup);

    let mut group = c.benchmark_group("adapt_drift");
    group.sample_size(3);
    let phase_b = setup.scenario.phase_b();
    for (name, partitioning) in [
        ("static", &setup.static_part),
        ("adaptive", &setup.adaptive_part),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, "phase-B"),
            partitioning,
            |b, partitioning| b.iter(|| black_box(measure(&setup.graph, partitioning, &phase_b))),
        );
    }
    // The adaptation pass itself (plan + incremental rebuild + publish).
    group.bench_function("adaptation_pass", |b| {
        b.iter(|| black_box(adapt(&setup.graph, &setup.static_part, &setup.scenario)))
    });
    group.finish();
}

criterion_group!(benches, bench_adapt);
criterion_main!(benches);
