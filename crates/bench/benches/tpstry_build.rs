//! E-F6 companion bench: TPSTry++ construction (Algorithm 1) cost as the
//! workload grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_motif::mining::MotifMiner;
use std::hint::black_box;

fn bench_tpstry_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpstry_build");
    group.sample_size(10);
    for query_count in [10usize, 50, 100, 250] {
        let workload = scenarios::generated_workload(query_count, 1.0, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(query_count),
            &workload,
            |b, workload| {
                let miner = MotifMiner::default();
                b.iter(|| black_box(miner.mine(workload).expect("mining succeeds")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tpstry_build);
criterion_main!(benches);
