//! Durability-layer throughput: checkpoint write, checkpoint recovery, WAL
//! append, and WAL replay.
//!
//! Durability sits on the ingest path (every acknowledged batch is an
//! fsynced WAL append) and on the restart path (recovery time bounds how
//! long a crashed node serves nothing), so both directions get data points:
//!
//! * **checkpoint write** — serialize a LOOM-partitioned [`ShardedStore`]
//!   as per-shard CRC blobs + manifest, fsync-complete (MB/s and ms);
//! * **checkpoint recover** — [`load_checkpoint`] back to a bit-verified
//!   store, including the graph/partitioning rebuild and the re-encode
//!   checksum proof (MB/s and ms);
//! * **WAL append** — fsynced batch appends (records/s, elements/s);
//! * **WAL replay** — full-log decode + CRC validation (elements/s).
//!
//! Besides the Criterion wall-clock timings, the bench emits
//! `BENCH_durability.json` at the workspace root so the durability numbers
//! have a trail across PRs. `LOOM_BENCH_FAST=1` (CI smoke mode) shrinks the
//! graph and batch counts.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::shard::ShardedStore;
use loom_store::checkpoint::{latest_checkpoint, load_checkpoint, write_checkpoint};
use loom_store::wal::{Wal, WAL_FILE};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

const PARTITIONS: u32 = 8;
const SEED: u64 = 42;
const EPOCH: u64 = 3;

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// (graph vertices, WAL batch size) per mode.
fn sizes() -> (usize, usize) {
    if fast_mode() {
        (600, 64)
    } else {
        (3_000, 256)
    }
}

fn bench_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loom-bench-dur-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp root is creatable");
    dir
}

/// A LOOM-partitioned store plus the stream that produced it.
fn setup() -> (GraphStream, ShardedStore) {
    let (vertices, _) = sizes();
    let graph = scenarios::social_graph(vertices, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(PARTITIONS, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut partitioner = registry.build(&spec).expect("buildable spec");
    let partitioning = partition_stream(partitioner.as_mut(), &stream).expect("stream partitions");
    let store = ShardedStore::from_parts(&graph, &partitioning).with_epoch(EPOCH);
    (stream, store)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("checkpoint dir listable")
        .map(|e| e.expect("entry").metadata().expect("metadata").len())
        .sum()
}

/// One timed checkpoint write → recover cycle plus a WAL fill → replay
/// cycle; returns the JSON body lines.
fn measure_and_persist(stream: &GraphStream, store: &ShardedStore) -> (PathBuf, usize) {
    let root = bench_root("json");
    let (_, batch_size) = sizes();

    // Checkpoint write (fsync-complete, manifest last).
    let started = Instant::now();
    let meta = write_checkpoint(&root, store, 0, "loom").expect("checkpoint writes");
    let write_ms = started.elapsed().as_secs_f64() * 1e3;
    let (dir, _, _) = latest_checkpoint(&root)
        .expect("scan succeeds")
        .expect("checkpoint present");
    let bytes = dir_bytes(&dir);
    let mb = bytes as f64 / (1 << 20) as f64;

    // Checkpoint recover: load + rebuild + bit-identity proof.
    let started = Instant::now();
    let loaded = load_checkpoint(&dir).expect("checkpoint loads");
    let load_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded.store.epoch(), EPOCH);
    assert_eq!(loaded.meta, meta);

    // WAL append: one fsynced record per batch.
    let wal_path = root.join(WAL_FILE);
    let elements = stream.elements();
    let batches: Vec<&[_]> = elements.chunks(batch_size).collect();
    let started = Instant::now();
    let mut wal = Wal::create(&wal_path).expect("wal creates");
    for batch in &batches {
        wal.append(batch).expect("append succeeds");
    }
    let append_s = started.elapsed().as_secs_f64();
    drop(wal);

    // WAL replay: full decode + per-record CRC validation.
    let started = Instant::now();
    let replay = Wal::replay(&wal_path).expect("wal replays");
    let replay_s = started.elapsed().as_secs_f64();
    assert_eq!(replay.records as usize, batches.len());

    let append_rate = batches.len() as f64 / append_s.max(f64::MIN_POSITIVE);
    let element_rate = elements.len() as f64 / append_s.max(f64::MIN_POSITIVE);
    let replay_rate = elements.len() as f64 / replay_s.max(f64::MIN_POSITIVE);
    println!(
        "durability checkpoint: write {write_ms:.1} ms / recover {load_ms:.1} ms \
         ({mb:.2} MiB, {} blobs); wal: {append_rate:.0} appends/s \
         ({element_rate:.0} elements/s), replay {replay_rate:.0} elements/s",
        meta.blobs.len(),
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"durability\",\n  \"seed\": {},\n  \"partitions\": {},\n",
            "  \"fast\": {},\n  \"checkpoint\": {{\n",
            "    \"vertices\": {},\n    \"edges\": {},\n    \"shards\": {},\n",
            "    \"bytes\": {},\n    \"write_ms\": {:.3},\n    \"write_mb_per_s\": {:.2},\n",
            "    \"recover_ms\": {:.3},\n    \"recover_mb_per_s\": {:.2}\n  }},\n",
            "  \"wal\": {{\n    \"batch_size\": {},\n    \"records\": {},\n",
            "    \"elements\": {},\n    \"append_records_per_s\": {:.0},\n",
            "    \"append_elements_per_s\": {:.0},\n    \"replay_elements_per_s\": {:.0}\n",
            "  }}\n}}\n"
        ),
        SEED,
        PARTITIONS,
        fast_mode(),
        meta.vertices,
        meta.edges,
        meta.shards,
        bytes,
        write_ms,
        mb / (write_ms / 1e3).max(f64::MIN_POSITIVE),
        load_ms,
        mb / (load_ms / 1e3).max(f64::MIN_POSITIVE),
        batch_size,
        batches.len(),
        elements.len(),
        append_rate,
        element_rate,
        replay_rate,
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_durability.json");
    std::fs::write(&path, json).expect("BENCH_durability.json is writable");
    println!("wrote {}", path.display());
    (root, batches.len())
}

fn bench_durability(c: &mut Criterion) {
    let (stream, store) = setup();
    let (json_root, _) = measure_and_persist(&stream, &store);
    let _ = std::fs::remove_dir_all(&json_root);
    let (_, batch_size) = sizes();

    let mut group = c.benchmark_group("durability");
    group.sample_size(3);

    let write_root = bench_root("write");
    group.bench_function("checkpoint_write", |b| {
        b.iter(|| black_box(write_checkpoint(&write_root, &store, 0, "loom").unwrap()))
    });

    let (dir, _, _) = latest_checkpoint(&write_root)
        .unwrap()
        .expect("written above");
    group.bench_function("checkpoint_recover", |b| {
        b.iter(|| black_box(load_checkpoint(&dir).unwrap()))
    });

    let wal_root = bench_root("wal");
    let wal_path = wal_root.join(WAL_FILE);
    group.bench_function("wal_append", |b| {
        b.iter(|| {
            let mut wal = Wal::create(&wal_path).unwrap();
            for batch in stream.elements().chunks(batch_size) {
                wal.append(batch).unwrap();
            }
            black_box(wal.records())
        })
    });
    group.bench_function("wal_replay", |b| {
        b.iter(|| black_box(Wal::replay(&wal_path).unwrap().records))
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&write_root);
    let _ = std::fs::remove_dir_all(&wal_root);
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
