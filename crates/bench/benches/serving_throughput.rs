//! Serving-engine throughput: shard-count sweep, Hash vs LOOM.
//!
//! The paper's claim — a workload-aware partitioning lets an online store
//! serve pattern queries faster — measured as throughput: the same rooted
//! query load is served on 1/2/4/8 worker shards over both a Hash and a LOOM
//! partitioning of the same stream, and the aggregate QPS (queries ÷ the
//! modelled makespan of the busiest shard, with the `loom-sim` latency model
//! charging every remote hop) is recorded per cell.
//!
//! Besides the Criterion-style wall-clock timings, the bench emits
//! `BENCH_serving.json` at the workspace root: a machine-readable
//! `shards × partitioner → {qps, p99}` table so the perf trajectory of the
//! serving layer has data points across PRs.
//!
//! Every serve run routes through a **shared pre-compiled plan cache** (one
//! plan per workload query, compiled once in setup), so the numbers reflect
//! the amortized compile-once path the engine runs in production — not
//! per-query order derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_partition::hash::HashConfig;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::executor::QueryMode;
use loom_sim::plan::{GraphStatistics, PlanCache, QueryPlanner};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PARTITIONS: u32 = 8;
const SAMPLES: usize = 400;
const SEED: u64 = 42;

fn mode() -> QueryMode {
    QueryMode::Rooted { seed_count: 3 }
}

/// The stores under test, labelled by partitioner name.
type LabelledStores = Vec<(&'static str, Arc<ShardedStore>)>;

/// Build the two stores under test: the same graph stream partitioned by
/// Hash and by LOOM, plus the workload's plans compiled once.
fn setup() -> (Workload, Arc<PlanCache>, LabelledStores) {
    let graph = scenarios::social_graph(3_000, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(&graph),
    ));
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let n = graph.vertex_count();
    let specs = [
        (
            "hash",
            PartitionerSpec::Hash(HashConfig::new(PARTITIONS, n)),
        ),
        (
            "loom",
            PartitionerSpec::Loom(
                LoomConfig::new(PARTITIONS, n)
                    .with_window_size(128)
                    .with_motif_threshold(0.3),
            ),
        ),
    ];
    let stores = specs
        .into_iter()
        .map(|(name, spec)| {
            let mut partitioner = registry.build(&spec).expect("buildable spec");
            let partitioning =
                partition_stream(partitioner.as_mut(), &stream).expect("stream partitions");
            (
                name,
                Arc::new(ShardedStore::from_parts(&graph, &partitioning)),
            )
        })
        .collect();
    (workload, plans, stores)
}

fn serve(
    store: &Arc<ShardedStore>,
    workload: &Workload,
    plans: &Arc<PlanCache>,
    shards: usize,
) -> ServeReport {
    ServeEngine::new(ServeConfig::new(shards).with_mode(mode()))
        .with_plan_cache(Arc::clone(plans))
        .serve_batch(store, workload, SAMPLES, SEED)
}

/// One JSON result cell.
fn cell(partitioner: &str, shards: usize, report: &ServeReport) -> String {
    format!(
        concat!(
            "    {{\"partitioner\": \"{}\", \"shards\": {}, \"qps\": {:.2}, ",
            "\"p99_us\": {:.2}, \"p50_us\": {:.2}, \"wall_clock_qps\": {:.2}, ",
            "\"remote_hop_fraction\": {:.4}, \"makespan_us\": {:.2}}}"
        ),
        partitioner,
        shards,
        report.aggregate_qps(),
        report.p99_latency_us,
        report.p50_latency_us,
        report.wall_clock_qps(),
        report.remote_hop_fraction(),
        report.makespan_us,
    )
}

/// Sweep the grid once, print the table, persist `BENCH_serving.json`.
fn sweep_and_persist(
    workload: &Workload,
    plans: &Arc<PlanCache>,
    stores: &[(&'static str, Arc<ShardedStore>)],
) {
    let mut cells = Vec::new();
    for (name, store) in stores {
        let mut baseline = 0.0f64;
        for &shards in &SHARD_COUNTS {
            let report = serve(store, workload, plans, shards);
            if shards == 1 {
                baseline = report.aggregate_qps();
            }
            println!(
                "serving_throughput {name}/{shards}: {:.0} qps (x{:.2} vs 1 shard), \
                 p99 {:.0} us, remote hops {:.1}%",
                report.aggregate_qps(),
                report.aggregate_qps() / baseline.max(f64::MIN_POSITIVE),
                report.p99_latency_us,
                report.remote_hop_fraction() * 100.0,
            );
            cells.push(cell(name, shards, &report));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"serving_throughput\",\n  \"samples\": {SAMPLES},\n  \
         \"seed\": {SEED},\n  \"partitions\": {PARTITIONS},\n  \"mode\": \
         \"rooted(seed_count=3)\",\n  \"plan_cache\": true,\n  \"results\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    // The bench runs with the package as cwd; the JSON belongs at the
    // workspace root next to the other reports.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, json).expect("BENCH_serving.json is writable");
    println!("wrote {}", path.display());
}

fn bench_serving(c: &mut Criterion) {
    let (workload, plans, stores) = setup();
    sweep_and_persist(&workload, &plans, &stores);

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(3);
    for (name, store) in &stores {
        for &shards in &SHARD_COUNTS {
            group.bench_with_input(BenchmarkId::new(*name, shards), &shards, |b, &shards| {
                b.iter(|| black_box(serve(store, &workload, &plans, shards)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
