//! Serving-engine throughput: shard-count sweep, Hash vs LOOM, and the
//! message-passing transport's overhead against a direct-call baseline.
//!
//! The paper's claim — a workload-aware partitioning lets an online store
//! serve pattern queries faster — measured as throughput: the same rooted
//! query load is served on 1/2/4/8 worker shards over both a Hash and a LOOM
//! partitioning of the same stream, and the aggregate QPS (queries ÷ the
//! modelled makespan of the busiest shard, with the `loom-sim` latency model
//! charging every remote hop) is recorded per cell.
//!
//! Since the serving engine moved to message-passing shard workers behind
//! `ShardTransport`, the bench also records the transport's cost at 4 shards
//! against the direct-call sequential executor on the same partitioning:
//! the modelled-QPS regression (which parity pins at zero — both paths
//! execute identical metrics) and the wall-clock cost of the two paths.
//!
//! Besides the Criterion-style wall-clock timings, the bench emits
//! `BENCH_serving.json` at the workspace root: a machine-readable
//! `shards × partitioner → {qps, p99}` table plus the transport-overhead
//! records, so the perf trajectory of the serving layer has data points
//! across PRs. Setting `LOOM_BENCH_FAST=1` (the CI smoke mode) shrinks the
//! graph and sample counts.
//!
//! Every serve run routes through a **shared pre-compiled plan cache** (one
//! plan per workload query, compiled once in setup), so the numbers reflect
//! the amortized compile-once path the engine runs in production — not
//! per-query order derivation.
//!
//! The QPS recorded here is **modelled** (deterministic latency-model cost
//! of the executed work) — the *measured* wall-clock capacity of the same
//! stack, driven open-loop to its saturation knee, lives in
//! `BENCH_capacity.json`, emitted by the `capacity` bench.
//!
//! Since `loom-obs` landed, every engine here runs **with telemetry
//! attached** — the numbers include the instrumented hot path. In full mode
//! the sweep asserts the modelled QPS of every cell stays within 2% of the
//! pre-instrumentation reference recorded by the previous two PRs, so
//! telemetry cannot silently tax the serving layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_obs::Telemetry;
use loom_partition::hash::HashConfig;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::executor::{QueryExecutor, QueryMode};
use loom_sim::plan::{GraphStatistics, PlanCache, QueryPlanner};
use loom_sim::store::PartitionedStore;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PARTITIONS: u32 = 8;
const SEED: u64 = 42;
/// The shard count the transport-overhead record is taken at.
const OVERHEAD_SHARDS: usize = 4;

/// Modelled aggregate QPS per `(partitioner, shards)` cell as recorded by
/// the last two pre-instrumentation runs of this bench (full mode, same
/// graph, seed, and plan cache). The modelled numbers are deterministic, so
/// instrumentation may not move them by more than the 2% budget the issue
/// allots to telemetry.
const REFERENCE_QPS: [(&str, usize, f64); 8] = [
    ("hash", 1, 24.04),
    ("hash", 2, 46.87),
    ("hash", 4, 85.28),
    ("hash", 8, 123.69),
    ("loom", 1, 32.24),
    ("loom", 2, 61.76),
    ("loom", 4, 104.02),
    ("loom", 8, 193.22),
];

/// Maximum relative modelled-QPS drift any cell may show against
/// [`REFERENCE_QPS`] with telemetry attached.
const QPS_DRIFT_BUDGET: f64 = 0.02;

/// Assert a full-mode cell's modelled QPS sits within the drift budget of
/// the pre-instrumentation reference. Fast mode serves a different graph,
/// so the reference does not apply there.
fn assert_reference_qps(partitioner: &str, shards: usize, qps: f64) {
    if fast_mode() {
        return;
    }
    let (_, _, reference) = REFERENCE_QPS
        .iter()
        .find(|(name, n, _)| *name == partitioner && *n == shards)
        .expect("every swept cell has a reference");
    let drift = (qps / reference - 1.0).abs();
    assert!(
        drift <= QPS_DRIFT_BUDGET,
        "{partitioner}/{shards}: modelled {qps:.2} qps drifts {:.2}% from the \
         pre-instrumentation reference {reference:.2} (budget {:.0}%)",
        drift * 100.0,
        QPS_DRIFT_BUDGET * 100.0,
    );
}

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn sizes() -> (usize, usize) {
    if fast_mode() {
        (600, 80)
    } else {
        (3_000, 400)
    }
}

fn mode() -> QueryMode {
    QueryMode::Rooted { seed_count: 3 }
}

/// One partitioning under test: the frozen sharded snapshot for the serving
/// engine plus the equivalent `PartitionedStore` for the direct-call
/// sequential baseline.
struct StoreUnderTest {
    name: &'static str,
    sharded: Arc<ShardedStore>,
    direct: PartitionedStore,
}

/// Build the two stores under test: the same graph stream partitioned by
/// Hash and by LOOM, plus the workload's plans compiled once.
fn setup() -> (Workload, Arc<PlanCache>, Vec<StoreUnderTest>) {
    let (vertices, _) = sizes();
    let graph = scenarios::social_graph(vertices, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(&graph),
    ));
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let n = graph.vertex_count();
    let specs = [
        (
            "hash",
            PartitionerSpec::Hash(HashConfig::new(PARTITIONS, n)),
        ),
        (
            "loom",
            PartitionerSpec::Loom(
                LoomConfig::new(PARTITIONS, n)
                    .with_window_size(128)
                    .with_motif_threshold(0.3),
            ),
        ),
    ];
    let stores = specs
        .into_iter()
        .map(|(name, spec)| {
            let mut partitioner = registry.build(&spec).expect("buildable spec");
            let partitioning =
                partition_stream(partitioner.as_mut(), &stream).expect("stream partitions");
            StoreUnderTest {
                name,
                sharded: Arc::new(ShardedStore::from_parts(&graph, &partitioning)),
                direct: PartitionedStore::new(graph.clone(), partitioning),
            }
        })
        .collect();
    (workload, plans, stores)
}

fn serve(
    store: &Arc<ShardedStore>,
    workload: &Workload,
    plans: &Arc<PlanCache>,
    telemetry: &Arc<Telemetry>,
    shards: usize,
    samples: usize,
) -> ServeReport {
    ServeEngine::new(ServeConfig::new(shards).with_mode(mode()))
        .with_plan_cache(Arc::clone(plans))
        .with_telemetry(Arc::clone(telemetry))
        .serve_batch(store, workload, samples, SEED)
}

/// One JSON result cell.
fn cell(partitioner: &str, shards: usize, report: &ServeReport) -> String {
    format!(
        concat!(
            "    {{\"partitioner\": \"{}\", \"shards\": {}, \"qps\": {:.2}, ",
            "\"p99_us\": {:.2}, \"p50_us\": {:.2}, \"wall_clock_qps\": {:.2}, ",
            "\"remote_hop_fraction\": {:.4}, \"makespan_us\": {:.2}}}"
        ),
        partitioner,
        shards,
        report.aggregate_qps(),
        report.p99_latency_us,
        report.p50_latency_us,
        report.wall_clock_qps(),
        report.remote_hop_fraction(),
        report.makespan_us,
    )
}

/// Measure the transport engine at [`OVERHEAD_SHARDS`] against the
/// direct-call sequential executor on the same partitioning and request
/// schedule, and return the JSON record.
///
/// The modelled-QPS comparison uses the serial modelled latency on both
/// sides (total latency-model cost of the executed work), so it isolates
/// what the message-passing refactor could have changed: the *answers*. The
/// two paths share the matcher and the schedule, so parity pins the
/// regression at zero; the record exists so any future divergence shows up
/// in the JSON trail. Wall-clock times capture the physical cost of the
/// transport hop.
fn transport_overhead(
    store: &StoreUnderTest,
    workload: &Workload,
    plans: &Arc<PlanCache>,
    telemetry: &Arc<Telemetry>,
    samples: usize,
) -> String {
    let executor = QueryExecutor::default()
        .with_mode(mode())
        .with_plan_cache(Arc::clone(plans));
    let direct_started = Instant::now();
    let direct = executor.execute_workload(&store.direct, workload, samples, SEED);
    let direct_wall_ms = direct_started.elapsed().as_secs_f64() * 1e3;

    let transport_started = Instant::now();
    let report = serve(
        &store.sharded,
        workload,
        plans,
        telemetry,
        OVERHEAD_SHARDS,
        samples,
    );
    let transport_wall_ms = transport_started.elapsed().as_secs_f64() * 1e3;

    let serial_qps = |latency_us: f64| {
        if latency_us > 0.0 {
            samples as f64 / (latency_us / 1e6)
        } else {
            0.0
        }
    };
    let direct_qps = serial_qps(direct.estimated_latency_us);
    let transport_qps = serial_qps(report.aggregate.estimated_latency_us);
    let regression = if direct_qps > 0.0 {
        1.0 - transport_qps / direct_qps
    } else {
        0.0
    };
    assert_eq!(
        report.aggregate, direct,
        "{}: transport aggregate diverged from the direct-call baseline",
        store.name
    );
    assert!(
        regression.abs() <= 0.05,
        "{}: modelled-QPS regression {regression:.4} exceeds the 5% budget",
        store.name
    );
    println!(
        "serving_throughput transport-overhead {}/{OVERHEAD_SHARDS}: modelled regression \
         {:.2}%, direct {direct_wall_ms:.1} ms vs transport {transport_wall_ms:.1} ms wall",
        store.name,
        regression * 100.0,
    );
    format!(
        concat!(
            "    {{\"partitioner\": \"{}\", \"shards\": {}, ",
            "\"direct_modelled_qps\": {:.2}, \"transport_modelled_qps\": {:.2}, ",
            "\"modelled_qps_regression\": {:.4}, \"direct_wall_ms\": {:.2}, ",
            "\"transport_wall_ms\": {:.2}}}"
        ),
        store.name,
        OVERHEAD_SHARDS,
        direct_qps,
        transport_qps,
        regression,
        direct_wall_ms,
        transport_wall_ms,
    )
}

/// Sweep the grid once, print the table, persist `BENCH_serving.json`.
fn sweep_and_persist(
    workload: &Workload,
    plans: &Arc<PlanCache>,
    stores: &[StoreUnderTest],
    telemetry: &Arc<Telemetry>,
    samples: usize,
) {
    let mut cells = Vec::new();
    let mut overhead = Vec::new();
    for store in stores {
        let mut baseline = 0.0f64;
        for &shards in &SHARD_COUNTS {
            let report = serve(&store.sharded, workload, plans, telemetry, shards, samples);
            if shards == 1 {
                baseline = report.aggregate_qps();
            }
            assert_reference_qps(store.name, shards, report.aggregate_qps());
            println!(
                "serving_throughput {}/{shards}: {:.0} qps (x{:.2} vs 1 shard), \
                 p99 {:.0} us, remote hops {:.1}%",
                store.name,
                report.aggregate_qps(),
                report.aggregate_qps() / baseline.max(f64::MIN_POSITIVE),
                report.p99_latency_us,
                report.remote_hop_fraction() * 100.0,
            );
            cells.push(cell(store.name, shards, &report));
        }
        overhead.push(transport_overhead(
            store, workload, plans, telemetry, samples,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serving_throughput\",\n  \"samples\": {samples},\n  \
         \"seed\": {SEED},\n  \"partitions\": {PARTITIONS},\n  \"mode\": \
         \"rooted(seed_count=3)\",\n  \"plan_cache\": true,\n  \"instrumented\": true,\n  \
         \"fast\": {},\n  \
         \"results\": [\n{}\n  ],\n  \"transport_overhead\": [\n{}\n  ]\n}}\n",
        fast_mode(),
        cells.join(",\n"),
        overhead.join(",\n")
    );
    // The bench runs with the package as cwd; the JSON belongs at the
    // workspace root next to the other reports.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, json).expect("BENCH_serving.json is writable");
    println!("wrote {}", path.display());
}

fn bench_serving(c: &mut Criterion) {
    let (workload, plans, stores) = setup();
    let (_, samples) = sizes();
    let telemetry = Telemetry::new();
    sweep_and_persist(&workload, &plans, &stores, &telemetry, samples);

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(3);
    for store in &stores {
        for &shards in &SHARD_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(store.name, shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        black_box(serve(
                            &store.sharded,
                            &workload,
                            &plans,
                            &telemetry,
                            shards,
                            samples,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
