//! E-T1 companion bench: partition + evaluate quality on the community graph.
//!
//! The table itself is produced by the `experiments` binary; this bench times
//! the partition-and-evaluate loop so regressions in either phase show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::metrics::evaluate;
use loom_partition::offline::{MultilevelConfig, MultilevelPartitioner};
use loom_partition::traits::partition_stream;
use std::hint::black_box;

fn bench_quality(c: &mut Criterion) {
    let graph = scenarios::community(5_000, 3);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let mut group = c.benchmark_group("partitioner_quality");
    group.sample_size(10);

    for k in [4u32, 16] {
        group.bench_with_input(BenchmarkId::new("ldg_evaluate", k), &k, |b, &k| {
            b.iter(|| {
                let mut p =
                    LdgPartitioner::new(LdgConfig::new(k, graph.vertex_count())).expect("valid");
                let partitioning = partition_stream(&mut p, &stream).expect("ok");
                black_box(evaluate(&graph, &partitioning))
            })
        });
        group.bench_with_input(BenchmarkId::new("offline_evaluate", k), &k, |b, &k| {
            b.iter(|| {
                let p = MultilevelPartitioner::new(MultilevelConfig::new(k)).expect("valid");
                let partitioning = p.partition(&graph).expect("ok");
                black_box(evaluate(&graph, &partitioning))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
