//! E-F1 companion bench: LOOM ingest time as the stream window grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::{LoomConfig, LoomPartitioner};
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::traits::partition_stream;
use std::hint::black_box;

fn bench_window_sweep(c: &mut Criterion) {
    let (graph, workload) = scenarios::motif_scenario(3_000, 150, 13);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 3 });
    let mut group = c.benchmark_group("window_sweep");
    group.sample_size(10);
    for window in [16usize, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let config = LoomConfig::new(8, graph.vertex_count())
                        .with_window_size(window)
                        .with_motif_threshold(0.3);
                    let mut p = LoomPartitioner::new(config, &tpstry).expect("valid");
                    black_box(partition_stream(&mut p, &stream).expect("ok"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window_sweep);
criterion_main!(benches);
