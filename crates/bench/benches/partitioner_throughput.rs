//! E-F4 companion bench: streaming-partitioner ingest throughput.
//!
//! Times a full pass of a 10k-vertex Barabási–Albert stream through each
//! streaming partitioner (and the offline multilevel partitioner for
//! reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::{LoomConfig, LoomPartitioner};
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::fennel::{FennelConfig, FennelPartitioner};
use loom_partition::hash::HashPartitioner;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::offline::{MultilevelConfig, MultilevelPartitioner};
use loom_partition::traits::partition_stream;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let graph = scenarios::social_graph(10_000, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let n = graph.vertex_count();
    let m = graph.edge_count();

    let mut group = c.benchmark_group("partitioner_throughput");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("hash", n), &stream, |b, stream| {
        b.iter(|| {
            let mut p = HashPartitioner::new(8, n).expect("valid");
            black_box(partition_stream(&mut p, stream).expect("ok"))
        })
    });
    group.bench_with_input(BenchmarkId::new("ldg", n), &stream, |b, stream| {
        b.iter(|| {
            let mut p = LdgPartitioner::new(LdgConfig::new(8, n)).expect("valid");
            black_box(partition_stream(&mut p, stream).expect("ok"))
        })
    });
    group.bench_with_input(BenchmarkId::new("fennel", n), &stream, |b, stream| {
        b.iter(|| {
            let mut p = FennelPartitioner::new(FennelConfig::new(8, n, m)).expect("valid");
            black_box(partition_stream(&mut p, stream).expect("ok"))
        })
    });
    group.bench_with_input(BenchmarkId::new("loom", n), &stream, |b, stream| {
        b.iter(|| {
            let config = LoomConfig::new(8, n)
                .with_window_size(256)
                .with_motif_threshold(0.3);
            let mut p = LoomPartitioner::new(config, &tpstry).expect("valid");
            black_box(partition_stream(&mut p, stream).expect("ok"))
        })
    });
    group.bench_with_input(BenchmarkId::new("offline", n), &graph, |b, graph| {
        b.iter(|| {
            let p = MultilevelPartitioner::new(MultilevelConfig::new(8)).expect("valid");
            black_box(p.partition(graph).expect("ok"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
