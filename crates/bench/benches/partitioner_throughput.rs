//! E-F4 companion bench: streaming-partitioner ingest throughput.
//!
//! Times a full pass of a 10k-vertex Barabási–Albert stream through each
//! streaming partitioner (and the offline multilevel partitioner for
//! reference). Every streaming partitioner is built from its declarative
//! [`PartitionerSpec`] through the workload registry and driven as a
//! `Box<dyn Partitioner>`.
//!
//! The `batched/*` group measures the batching win directly: the same spec
//! is driven with chunk sizes {1, 64, 1024}, so per-element ingestion
//! (chunk 1) is compared against amortised batch ingestion on identical
//! work (the resulting partitionings are identical by contract).
//!
//! The `planned_execution/*` group closes the pipeline: the partitionings
//! produced above serve the motif workload through a **shared pre-compiled
//! plan cache**, so the end-to-end numbers reflect the amortized
//! compile-once path rather than per-query order derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::fennel::FennelConfig;
use loom_partition::hash::HashConfig;
use loom_partition::ldg::LdgConfig;
use loom_partition::offline::{MultilevelConfig, MultilevelPartitioner};
use loom_partition::spec::{LoomConfig, PartitionerRegistry, PartitionerSpec};
use loom_partition::traits::{partition_stream, partition_stream_batched};
use loom_sim::executor::{QueryExecutor, QueryMode};
use loom_sim::plan::{GraphStatistics, PlanCache, QueryPlanner};
use loom_sim::store::PartitionedStore;
use std::hint::black_box;
use std::sync::Arc;

fn specs(n: usize, m: usize) -> Vec<PartitionerSpec> {
    vec![
        PartitionerSpec::Hash(HashConfig::new(8, n)),
        PartitionerSpec::Ldg(LdgConfig::new(8, n)),
        PartitionerSpec::Fennel(FennelConfig::new(8, n, m)),
        PartitionerSpec::Loom(
            LoomConfig::new(8, n)
                .with_window_size(256)
                .with_motif_threshold(0.3),
        ),
    ]
}

fn setup() -> (PartitionerRegistry, loom_graph::LabelledGraph, GraphStream) {
    let graph = scenarios::social_graph(10_000, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    (workload_registry(&tpstry), graph, stream)
}

fn bench_partitioners(c: &mut Criterion) {
    let (registry, graph, stream) = setup();
    let (n, m) = (graph.vertex_count(), graph.edge_count());

    let mut group = c.benchmark_group("partitioner_throughput");
    group.sample_size(10);

    for spec in specs(n, m) {
        group.bench_with_input(BenchmarkId::new(spec.name(), n), &stream, |b, stream| {
            b.iter(|| {
                let mut p = registry.build(&spec).expect("buildable spec");
                black_box(partition_stream(p.as_mut(), stream).expect("ok"))
            })
        });
    }
    group.bench_with_input(BenchmarkId::new("offline", n), &graph, |b, graph| {
        b.iter(|| {
            let p = MultilevelPartitioner::new(MultilevelConfig::new(8)).expect("valid");
            black_box(p.partition(graph).expect("ok"))
        })
    });
    group.finish();
}

fn bench_batched_ingest(c: &mut Criterion) {
    let (registry, graph, stream) = setup();
    let (n, m) = (graph.vertex_count(), graph.edge_count());

    let mut group = c.benchmark_group("batched");
    group.sample_size(10);

    for spec in specs(n, m) {
        for chunk_size in [1usize, 64, 1024] {
            group.bench_with_input(
                BenchmarkId::new(spec.name(), chunk_size),
                &chunk_size,
                |b, &chunk_size| {
                    b.iter(|| {
                        let mut p = registry.build(&spec).expect("buildable spec");
                        black_box(
                            partition_stream_batched(p.as_mut(), &stream, chunk_size).expect("ok"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_planned_execution(c: &mut Criterion) {
    let (registry, graph, stream) = setup();
    let (n, m) = (graph.vertex_count(), graph.edge_count());
    let workload = scenarios::motif_workload();
    // Compiled once, reused by every timed execution below — the amortized
    // plan-cache path the serving stack runs.
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(&graph),
    ));
    let executor = QueryExecutor::default()
        .with_mode(QueryMode::Rooted { seed_count: 3 })
        .with_plan_cache(Arc::clone(&plans));

    let mut group = c.benchmark_group("planned_execution");
    group.sample_size(10);
    for spec in specs(n, m) {
        let mut partitioner = registry.build(&spec).expect("buildable spec");
        let partitioning = partition_stream(partitioner.as_mut(), &stream).expect("ok");
        let store = PartitionedStore::new(graph.clone(), partitioning);
        group.bench_with_input(BenchmarkId::new(spec.name(), n), &store, |b, store| {
            b.iter(|| black_box(executor.execute_workload(store, &workload, 50, 11)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_batched_ingest,
    bench_planned_execution
);
criterion_main!(benches);
