//! Compile-once query planning: what the amortization buys.
//!
//! Four measurements:
//!
//! * **planned vs unplanned throughput** — the same sampled workload, in
//!   the online transactional mode the paper targets (single-seed rooted
//!   queries), executed through a pre-compiled shared [`PlanCache`] versus
//!   the legacy path that re-derives a matching order on every execution.
//!   The cache is compiled with [`PlanStrategy::Legacy`], so both sides run
//!   *identical* searches (the parity suite pins this) and the difference
//!   is pure amortization;
//! * **cost-ranked throughput** — the same load under the default
//!   [`PlanStrategy::CostRanked`] plans (a different ordering, hence a
//!   different — statistically cheaper — search; reported separately, not
//!   as a speedup);
//! * **compile cost** — one full workload compilation (the price paid once
//!   per workload, amortized over every execution after);
//! * **plan-cache hit path** — the per-lookup cost of `PlanCache::get`.
//!
//! Besides the Criterion-style timings, the bench emits
//! `BENCH_query_plan.json` at the workspace root so the plan-path numbers
//! have machine-readable data points across PRs. Setting `LOOM_BENCH_FAST=1`
//! (the CI smoke mode) shrinks the graph and sample counts.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_bench::scenarios;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::workload::Workload;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::traits::partition_stream;
use loom_sim::executor::{QueryExecutor, QueryMode};
use loom_sim::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use loom_sim::store::PartitionedStore;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 42;
const K: u32 = 8;

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn setup() -> (PartitionedStore, Workload, GraphStatistics, usize) {
    let (vertices, samples) = if fast_mode() { (600, 60) } else { (3_000, 300) };
    let graph = scenarios::social_graph(vertices, 7);
    let workload = scenarios::generated_workload(12, 1.0, 3);
    let stats = GraphStatistics::from_graph(&graph);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let mut partitioner =
        LdgPartitioner::new(LdgConfig::new(K, graph.vertex_count())).expect("valid config");
    let partitioning = partition_stream(&mut partitioner, &stream).expect("stream partitions");
    (
        PartitionedStore::new(graph, partitioning),
        workload,
        stats,
        samples,
    )
}

fn executor() -> QueryExecutor {
    // The online transactional regime: one index-lookup root per execution,
    // a tight match limit — short searches, where per-call planning is a
    // measurable fraction of the work.
    QueryExecutor::default()
        .with_mode(QueryMode::Rooted { seed_count: 1 })
        .with_match_limit(100)
}

/// Time `rounds` workload runs and return executions/sec.
fn throughput(
    executor: &QueryExecutor,
    store: &PartitionedStore,
    workload: &Workload,
    samples: usize,
    rounds: usize,
) -> f64 {
    let start = Instant::now();
    for round in 0..rounds {
        black_box(executor.execute_workload(store, workload, samples, SEED + round as u64));
    }
    (samples * rounds) as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

/// One measured sweep: compile cost, planned vs unplanned throughput,
/// cache-hit latency; persisted as `BENCH_query_plan.json`.
fn sweep_and_persist(
    store: &PartitionedStore,
    workload: &Workload,
    stats: &GraphStatistics,
    samples: usize,
) -> Arc<PlanCache> {
    let rounds = if fast_mode() { 4 } else { 20 };

    // Compile cost: the once-per-workload price.
    let start = Instant::now();
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::new(PlanStrategy::Legacy),
        workload,
        stats,
    ));
    let compile_us = start.elapsed().as_secs_f64() * 1e6;
    let ranked = Arc::new(PlanCache::compile(
        &QueryPlanner::new(PlanStrategy::CostRanked),
        workload,
        stats,
    ));

    // Warm both paths once, then time. Legacy-strategy plans make the
    // planned and unplanned searches identical, so the ratio is pure
    // amortization.
    throughput(&executor(), store, workload, samples, 1);
    let unplanned_qps = throughput(&executor(), store, workload, samples, rounds);
    let planned_exec = executor().with_plan_cache(Arc::clone(&plans));
    throughput(&planned_exec, store, workload, samples, 1);
    let planned_qps = throughput(&planned_exec, store, workload, samples, rounds);
    let ranked_exec = executor().with_plan_cache(Arc::clone(&ranked));
    throughput(&ranked_exec, store, workload, samples, 1);
    let ranked_qps = throughput(&ranked_exec, store, workload, samples, rounds);

    // The hit path: repeated lookups of every compiled plan.
    let lookups = if fast_mode() { 20_000 } else { 200_000 };
    let ids: Vec<_> = workload.queries().iter().map(|q| q.id()).collect();
    let start = Instant::now();
    for i in 0..lookups {
        black_box(plans.get(ids[i % ids.len()]));
    }
    let hit_ns = start.elapsed().as_secs_f64() * 1e9 / lookups as f64;

    let speedup = planned_qps / unplanned_qps.max(f64::MIN_POSITIVE);
    println!(
        "query_planning: planned {planned_qps:.0} exec/s vs unplanned {unplanned_qps:.0} exec/s \
         (x{speedup:.2}), cost-ranked {ranked_qps:.0} exec/s, compile {compile_us:.0} us for {} \
         plans, cache hit {hit_ns:.0} ns",
        plans.len(),
    );
    let json = format!(
        "{{\n  \"bench\": \"query_planning\",\n  \"fast_mode\": {},\n  \"samples\": {samples},\n  \
         \"queries\": {},\n  \"mode\": \"rooted(seed_count=1)\",\n  \
         \"planned_execs_per_sec\": {planned_qps:.2},\n  \
         \"unplanned_execs_per_sec\": {unplanned_qps:.2},\n  \"speedup\": {speedup:.4},\n  \
         \"cost_ranked_execs_per_sec\": {ranked_qps:.2},\n  \
         \"compile_us\": {compile_us:.2},\n  \"cache_hit_ns\": {hit_ns:.2},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
        fast_mode(),
        workload.len(),
        plans.hits(),
        plans.misses(),
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_query_plan.json");
    std::fs::write(&path, json).expect("BENCH_query_plan.json is writable");
    println!("wrote {}", path.display());
    plans
}

fn bench_query_planning(c: &mut Criterion) {
    let (store, workload, stats, samples) = setup();
    let plans = sweep_and_persist(&store, &workload, &stats, samples);

    let mut group = c.benchmark_group("query_planning");
    group.sample_size(5);
    let unplanned = executor();
    group.bench_function("unplanned", |b| {
        b.iter(|| black_box(unplanned.execute_workload(&store, &workload, samples, SEED)))
    });
    let planned = executor().with_plan_cache(Arc::clone(&plans));
    group.bench_function("planned", |b| {
        b.iter(|| black_box(planned.execute_workload(&store, &workload, samples, SEED)))
    });
    group.bench_function("compile", |b| {
        b.iter(|| {
            black_box(PlanCache::compile(
                &QueryPlanner::default(),
                &workload,
                &stats,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_planning);
criterion_main!(benches);
