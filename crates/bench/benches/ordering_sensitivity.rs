//! E-F3 companion bench: LDG and LOOM ingest time under the different stream
//! orderings the paper discusses (§3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::{LoomConfig, LoomPartitioner};
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::traits::partition_stream;
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let (graph, workload) = scenarios::motif_scenario(3_000, 150, 9);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let orderings = [
        ("random", StreamOrder::Random { seed: 1 }),
        ("bfs", StreamOrder::Bfs),
        ("adversarial", StreamOrder::Adversarial),
    ];
    let mut group = c.benchmark_group("ordering_sensitivity");
    group.sample_size(10);
    for (name, order) in orderings {
        let stream = GraphStream::from_graph(&graph, &order);
        group.bench_with_input(BenchmarkId::new("ldg", name), &stream, |b, stream| {
            b.iter(|| {
                let mut p =
                    LdgPartitioner::new(LdgConfig::new(8, graph.vertex_count())).expect("valid");
                black_box(partition_stream(&mut p, stream).expect("ok"))
            })
        });
        group.bench_with_input(BenchmarkId::new("loom", name), &stream, |b, stream| {
            b.iter(|| {
                let config = LoomConfig::new(8, graph.vertex_count())
                    .with_window_size(256)
                    .with_motif_threshold(0.3);
                let mut p = LoomPartitioner::new(config, &tpstry).expect("valid");
                black_box(partition_stream(&mut p, stream).expect("ok"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
