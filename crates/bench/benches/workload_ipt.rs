//! E-T2 companion bench: executing the pattern-matching workload against a
//! partitioned store (the inter-partition traversal measurement itself).
//! Executions route through a pre-compiled shared plan cache — the
//! amortized compile-once path; `query_planning` measures the amortization
//! itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::{LoomConfig, LoomPartitioner};
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::traits::partition_stream;
use loom_sim::executor::QueryExecutor;
use loom_sim::plan::{GraphStatistics, PlanCache, QueryPlanner};
use loom_sim::store::PartitionedStore;
use std::hint::black_box;
use std::sync::Arc;

fn bench_execution(c: &mut Criterion) {
    let (graph, workload) = scenarios::motif_scenario(3_000, 150, 5);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 3 });

    let ldg_store = {
        let mut p = LdgPartitioner::new(LdgConfig::new(8, graph.vertex_count())).expect("valid");
        let partitioning = partition_stream(&mut p, &stream).expect("ok");
        PartitionedStore::new(graph.clone(), partitioning)
    };
    let loom_store = {
        let config = LoomConfig::new(8, graph.vertex_count())
            .with_window_size(256)
            .with_motif_threshold(0.3);
        let mut p = LoomPartitioner::new(config, &tpstry).expect("valid");
        let partitioning = partition_stream(&mut p, &stream).expect("ok");
        PartitionedStore::new(graph.clone(), partitioning)
    };

    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(&graph),
    ));
    let executor = QueryExecutor::default()
        .with_match_limit(2_000)
        .with_plan_cache(plans);
    let mut group = c.benchmark_group("workload_ipt");
    group.sample_size(10);
    for (name, store) in [("ldg", &ldg_store), ("loom", &loom_store)] {
        group.bench_with_input(
            BenchmarkId::new("execute_workload", name),
            store,
            |b, store| b.iter(|| black_box(executor.execute_workload(store, &workload, 50, 11))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
