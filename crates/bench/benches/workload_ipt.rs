//! E-T2 companion bench: executing the pattern-matching workload against a
//! partitioned store (the inter-partition traversal measurement itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::{LoomConfig, LoomPartitioner};
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_partition::ldg::{LdgConfig, LdgPartitioner};
use loom_partition::traits::partition_stream;
use loom_sim::executor::QueryExecutor;
use loom_sim::store::PartitionedStore;
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let (graph, workload) = scenarios::motif_scenario(3_000, 150, 5);
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 3 });

    let ldg_store = {
        let mut p = LdgPartitioner::new(LdgConfig::new(8, graph.vertex_count())).expect("valid");
        let partitioning = partition_stream(&mut p, &stream).expect("ok");
        PartitionedStore::new(graph.clone(), partitioning)
    };
    let loom_store = {
        let config = LoomConfig::new(8, graph.vertex_count())
            .with_window_size(256)
            .with_motif_threshold(0.3);
        let mut p = LoomPartitioner::new(config, &tpstry).expect("valid");
        let partitioning = partition_stream(&mut p, &stream).expect("ok");
        PartitionedStore::new(graph.clone(), partitioning)
    };

    let executor = QueryExecutor::default().with_match_limit(2_000);
    let mut group = c.benchmark_group("workload_ipt");
    group.sample_size(10);
    for (name, store) in [("ldg", &ldg_store), ("loom", &loom_store)] {
        group.bench_with_input(
            BenchmarkId::new("execute_workload", name),
            store,
            |b, store| b.iter(|| black_box(executor.execute_workload(store, &workload, 50, 11))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
