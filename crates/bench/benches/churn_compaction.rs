//! Deletion churn: serving cost before, during, and after a dissolve phase.
//!
//! The [`DeletionChurnScenario`] grows a motif-rich graph and then tears a
//! fraction of the planted instances back down. Two strategies answer the
//! resulting mutation stream:
//!
//! * **adaptive** — the tombstone/compaction stack: deletes mark slots in
//!   the published store (queries skip them, no rebuild), and an epoch
//!   compaction rewrites only the shards whose tombstone fraction crossed
//!   the threshold;
//! * **static** — the rebuild-to-delete baseline: the stale pre-dissolve
//!   store keeps serving (wrong answers during the churn) until a full
//!   from-scratch repartition + store rebuild lands the deletes.
//!
//! Besides Criterion-style timings, the bench emits `BENCH_churn.json` at
//! the workspace root: per `(strategy, phase)` cell the QPS, p50/p99 and
//! match count, plus the one-off compaction vs rebuild costs. Setting
//! `LOOM_BENCH_FAST=1` (the CI smoke mode) shrinks the scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_core::workload_registry;
use loom_graph::{GraphStream, LabelledGraph};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_partition::partition::Partitioning;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::churn::DeletionChurnScenario;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const K: u32 = 4;
const SEED: u64 = 42;
/// Compaction threshold: rewrite a shard once 5% of its slots are dead.
const THRESHOLD: f64 = 0.05;

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn samples() -> usize {
    if fast_mode() {
        150
    } else {
        400
    }
}

fn scenario() -> DeletionChurnScenario {
    let (background_vertices, instances) = if fast_mode() { (300, 30) } else { (1_500, 150) };
    DeletionChurnScenario {
        background_vertices,
        instances,
        dissolve_fraction: 0.5,
        relabel_fraction: 0.1,
        seed: 17,
    }
}

fn mine(graph: &LabelledGraph, stream: &GraphStream, workload: &Workload) -> Partitioning {
    let tpstry = MotifMiner::default()
        .mine(workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(K, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut partitioner = registry.build(&spec).expect("buildable spec");
    partition_stream(partitioner.as_mut(), stream).expect("stream partitions")
}

fn measure(store: &Arc<ShardedStore>, workload: &Workload) -> ServeReport {
    ServeEngine::new(ServeConfig::new(K as usize)).serve_batch(store, workload, samples(), SEED)
}

struct Setup {
    workload: Workload,
    /// Fully grown store — both arms' "before" phase.
    before: Arc<ShardedStore>,
    /// Adaptive "during": deletes landed as tombstones, no rebuild.
    tombstoned: Arc<ShardedStore>,
    /// Adaptive "after": over-threshold shards rewritten.
    compacted: Arc<ShardedStore>,
    /// Static "after": full repartition + rebuild of the dissolved graph.
    rebuilt: Arc<ShardedStore>,
    purged_vertices: usize,
    compacted_shards: usize,
    compaction_ms: f64,
    rebuild_ms: f64,
    dissolved_instances: usize,
    relabelled_instances: usize,
}

fn setup() -> Setup {
    let scenario = scenario();
    let run = scenario.build().expect("scenario builds");
    let workload = DeletionChurnScenario::workload();
    let partitioning = mine(&run.graph, &run.build_stream, &workload);
    let before = ShardedStore::from_parts(&run.graph, &partitioning);

    // Adaptive arm: tombstone the dissolve stream, then compact.
    let tombstoned = before.apply_mutations(&run.dissolve).store;
    let started = Instant::now();
    let compacted = tombstoned.compact(THRESHOLD);
    let compaction_ms = started.elapsed().as_secs_f64() * 1e3;

    // Static arm: repartition and rebuild from scratch to land the deletes.
    let started = Instant::now();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(K, run.graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut partitioner = registry.build(&spec).expect("buildable spec");
    partitioner
        .ingest_batch(run.build_stream.elements())
        .expect("build phase ingests");
    partitioner
        .ingest_batch(&run.dissolve)
        .expect("dissolve phase ingests");
    let rebuilt_partitioning = partitioner.finish().expect("finishes");
    let rebuilt = ShardedStore::from_parts(&run.final_graph, &rebuilt_partitioning);
    let rebuild_ms = started.elapsed().as_secs_f64() * 1e3;

    Setup {
        workload,
        before: Arc::new(before),
        tombstoned: Arc::new(tombstoned),
        compacted: Arc::new(compacted.store),
        rebuilt: Arc::new(rebuilt),
        purged_vertices: compacted.purged_vertices,
        compacted_shards: compacted.compacted_shards.len(),
        compaction_ms,
        rebuild_ms,
        dissolved_instances: run.dissolved_instances,
        relabelled_instances: run.relabelled_instances,
    }
}

fn cell(strategy: &str, phase: &str, report: &ServeReport) -> String {
    format!(
        concat!(
            "    {{\"strategy\": \"{}\", \"phase\": \"{}\", ",
            "\"qps\": {:.2}, \"p99_us\": {:.2}, \"p50_us\": {:.2}, ",
            "\"matches\": {}}}"
        ),
        strategy,
        phase,
        report.aggregate_qps(),
        report.p99_latency_us,
        report.p50_latency_us,
        report.aggregate.matches_found,
    )
}

/// Serve every `(strategy, phase)` cell, print the table, persist the JSON.
fn sweep_and_persist(setup: &Setup) {
    let arms: [(&str, &str, &Arc<ShardedStore>); 6] = [
        ("adaptive", "before", &setup.before),
        ("adaptive", "during", &setup.tombstoned),
        ("adaptive", "after", &setup.compacted),
        ("static", "before", &setup.before),
        // Static serving cannot apply deletes without a rebuild: during the
        // churn it keeps answering from the stale store.
        ("static", "during", &setup.before),
        ("static", "after", &setup.rebuilt),
    ];
    let mut cells = Vec::new();
    for (strategy, phase, store) in arms {
        let report = measure(store, &setup.workload);
        println!(
            "churn_compaction {strategy}/{phase}: {:.0} qps, p99 {:.0} us, {} matches",
            report.aggregate_qps(),
            report.p99_latency_us,
            report.aggregate.matches_found,
        );
        cells.push(cell(strategy, phase, &report));
    }
    let json = format!(
        "{{\n  \"bench\": \"churn_compaction\",\n  \"samples\": {},\n  \
         \"seed\": {SEED},\n  \"partitions\": {K},\n  \
         \"dissolved_instances\": {},\n  \"relabelled_instances\": {},\n  \
         \"compaction_threshold\": {THRESHOLD},\n  \
         \"compacted_shards\": {},\n  \"purged_vertices\": {},\n  \
         \"compaction_ms\": {:.3},\n  \"rebuild_ms\": {:.3},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        samples(),
        setup.dissolved_instances,
        setup.relabelled_instances,
        setup.compacted_shards,
        setup.purged_vertices,
        setup.compaction_ms,
        setup.rebuild_ms,
        cells.join(",\n")
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_churn.json");
    std::fs::write(&path, json).expect("BENCH_churn.json is writable");
    println!("wrote {}", path.display());
}

fn bench_churn(c: &mut Criterion) {
    let setup = setup();
    sweep_and_persist(&setup);

    // The tombstoned and compacted stores answer identically to the
    // from-scratch rebuild — the bench is meaningless otherwise.
    let tomb = measure(&setup.tombstoned, &setup.workload);
    let compacted = measure(&setup.compacted, &setup.workload);
    let rebuilt = measure(&setup.rebuilt, &setup.workload);
    assert_eq!(
        tomb.aggregate.matches_found,
        rebuilt.aggregate.matches_found
    );
    assert_eq!(
        compacted.aggregate.matches_found,
        rebuilt.aggregate.matches_found
    );

    let mut group = c.benchmark_group("churn_compaction");
    group.sample_size(3);
    for (name, store) in [
        ("serve_tombstoned", &setup.tombstoned),
        ("serve_compacted", &setup.compacted),
        ("serve_rebuilt", &setup.rebuilt),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(measure(store, &setup.workload)))
        });
    }
    // The maintenance operation itself: compaction rewrites only the dirty
    // shards, the static alternative repartitions the world (timed once in
    // setup, reported in the JSON).
    group.bench_function("compaction_pass", |b| {
        b.iter(|| black_box(setup.tombstoned.compact(THRESHOLD)))
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
