//! Open-loop capacity: RPS ramps to the saturation knee, per
//! (partitioner × shards × plan strategy) cell.
//!
//! Where `serving_throughput` records *modelled* QPS (latency-model cost of
//! the executed work), this bench measures what the serving stack sustains
//! in **wall-clock** time: a pre-computed arrival schedule is paced
//! open-loop through `loom-load` — injection never blocks on backpressure,
//! late arrivals are shed, rejected ones count against the error budget —
//! and the offered rate ramps until goodput flattens below the offered
//! rate. The knee (the last offered rate each cell kept up with) is the
//! capacity number.
//!
//! The committed artifact uses **constant-interval** arrivals: the offered
//! count of every step is then exact (`rate × duration`), so the knee is a
//! property of service capacity alone, not of arrival-count variance —
//! Poisson steps this short would carry ±6–16% count noise straight into
//! the achieved/offered ratio. The Poisson process (and the p99-SLO knee
//! signal) are exercised by `tests/capacity.rs` and the `capacity` example.
//!
//! Real service time on these small graphs is microseconds, so the knee of
//! the raw engine would measure channel overhead, not the serving economics
//! the paper cares about. Instead the engine runs with **service-time
//! emulation** ([`loom_serve::engine::ServeConfig::with_service_hold`]):
//! each worker holds its shard for the query's *modelled* latency × a
//! calibrated scale, so a query that the latency model says is twice as
//! expensive occupies its shard twice as long. The scale is calibrated so
//! the hash/1-shard cell's capacity lands near a fixed target, which makes
//! the sweep portable across host speeds — and makes the knee ordering
//! (LOOM above Hash, more shards above fewer) a property of the
//! partitioning quality, exactly the claim under test.
//!
//! Emits `BENCH_capacity.json` at the workspace root: per-cell knee RPS and
//! the full per-step offered/achieved/latency table. `LOOM_BENCH_FAST=1`
//! (the CI smoke mode) shrinks the graph and runs a two-step ramp whose
//! second step is far past every cell's knee, so the smoke asserts the knee
//! machinery end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_load::{
    ArrivalProcess, CapacityCell, CapacityReport, CellSpec, LoadConfig, RampSchedule,
    SaturationDetector,
};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_obs::Telemetry;
use loom_partition::hash::HashConfig;
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::shard::ShardedStore;
use loom_sim::executor::QueryMode;
use loom_sim::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const PARTITIONS: u32 = 8;
const SEED: u64 = 42;
/// Per-request deadline from arrival; queued requests past it are cut short
/// and counted `deadline_expired`, which keeps saturated-step backlogs from
/// dragging the drain out.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(100);
/// Queries served to calibrate the service-hold scale.
const PROBE_SAMPLES: usize = 200;
/// Per-query match cap for every engine in the sweep, paired with
/// [`TRAVERSAL_BUDGET`]. Unbounded rooted queries on hub vertices have
/// modelled latencies thousands of times the median; held that long, a
/// single monster query dominates whole ramp steps and the knee becomes a
/// property of the tail draw, not the configuration.
const MATCH_LIMIT: usize = 64;
/// Per-query traversal budget. Modelled latency is proportional to
/// traversals, so this is the knob that actually bounds the held
/// service-time tail — while the per-query cost stays workload-dependent
/// (within the same budget, LOOM's placement turns remote hops into local
/// ones, so its queries still hold their shards for less time).
const TRAVERSAL_BUDGET: usize = 512;

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn vertices() -> usize {
    if fast_mode() {
        600
    } else {
        3_000
    }
}

/// Capacity the hash/1-shard cell is calibrated to.
fn target_rps() -> f64 {
    if fast_mode() {
        300.0
    } else {
        400.0
    }
}

/// Full mode ramps through every cell's knee in 200 rps steps; fast mode
/// runs one in-capacity step and one far-past-capacity step so a knee is
/// always found.
fn ramp() -> RampSchedule {
    if fast_mode() {
        RampSchedule::new(100.0, 2_900.0, Duration::from_millis(200), 3_000.0)
    } else {
        RampSchedule::new(200.0, 200.0, Duration::from_millis(300), 4_000.0)
    }
}

fn mode() -> QueryMode {
    QueryMode::Rooted { seed_count: 3 }
}

/// One partitioning under test.
struct StoreUnderTest {
    name: &'static str,
    sharded: Arc<ShardedStore>,
}

/// The two partitionings, the workload, and one compiled plan cache per
/// strategy.
struct BenchSetup {
    workload: Workload,
    plans: Vec<(&'static str, Arc<PlanCache>)>,
    stores: Vec<StoreUnderTest>,
}

fn setup() -> BenchSetup {
    let graph = scenarios::social_graph(vertices(), 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let stats = GraphStatistics::from_graph(&graph);
    let plans = [
        ("legacy", PlanStrategy::Legacy),
        ("cost_ranked", PlanStrategy::CostRanked),
    ]
    .into_iter()
    .map(|(name, strategy)| {
        let planner = QueryPlanner::new(strategy);
        (
            name,
            Arc::new(PlanCache::compile(&planner, &workload, &stats)),
        )
    })
    .collect();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let n = graph.vertex_count();
    let specs = [
        (
            "hash",
            PartitionerSpec::Hash(HashConfig::new(PARTITIONS, n)),
        ),
        (
            "loom",
            PartitionerSpec::Loom(
                LoomConfig::new(PARTITIONS, n)
                    .with_window_size(128)
                    .with_motif_threshold(0.3),
            ),
        ),
    ];
    let stores = specs
        .into_iter()
        .map(|(name, spec)| {
            let mut partitioner = registry.build(&spec).expect("buildable spec");
            let partitioning =
                partition_stream(partitioner.as_mut(), &stream).expect("stream partitions");
            StoreUnderTest {
                name,
                sharded: Arc::new(ShardedStore::from_parts(&graph, &partitioning)),
            }
        })
        .collect();
    BenchSetup {
        workload,
        plans,
        stores,
    }
}

/// Calibrate the service-hold scale so one worker over the hash store
/// sustains roughly [`target_rps`]: probe the mean *modelled* latency per
/// query, then pick the scale whose per-query hold equals the target's
/// inter-completion gap. LOOM's cheaper queries then hold their shards
/// for less time — capacity ordering follows partitioning quality.
fn calibrate_hold(hash: &StoreUnderTest, workload: &Workload, plans: &Arc<PlanCache>) -> f64 {
    let engine = ServeEngine::new(
        ServeConfig::new(1)
            .with_mode(mode())
            .with_match_limit(MATCH_LIMIT),
    )
    .with_plan_cache(Arc::clone(plans));
    let request = loom_sim::engine::QueryRequest::workload(PROBE_SAMPLES)
        .with_seed(SEED)
        .with_traversal_budget(TRAVERSAL_BUDGET);
    let (probe, _) = engine.run_request(&hash.sharded, workload, request);
    let mean_us = probe.aggregate.estimated_latency_us / PROBE_SAMPLES as f64;
    assert!(mean_us > 0.0, "probe must execute modelled work");
    let scale = 1e6 / (target_rps() * mean_us);
    println!(
        "capacity calibration: mean modelled latency {mean_us:.1} us/query, \
         hold scale {scale:.3} targets {:.0} rps on hash/1x",
        target_rps()
    );
    scale
}

/// Drive every (partitioner × shards × strategy) cell with the same ramp,
/// seed, and calibrated hold.
fn sweep(
    workload: &Workload,
    plans: &[(&'static str, Arc<PlanCache>)],
    stores: &[StoreUnderTest],
    hold_scale: f64,
) -> CapacityReport {
    // Goodput flattening is the sole knee signal here: held service times
    // are heavy-tailed (the latency model's tail × the hold scale), so any
    // fixed p99 SLO either sits below the *unloaded* tail or never trips
    // before goodput collapses. The request timeout keeps saturated-step
    // backlogs from smearing into later steps.
    let config = LoadConfig::new(ramp())
        .with_process(ArrivalProcess::Constant)
        .with_seed(SEED)
        .with_detector(SaturationDetector::default())
        .with_request_timeout(REQUEST_TIMEOUT)
        .with_traversal_budget(TRAVERSAL_BUDGET)
        .with_service_hold(hold_scale);
    let mut cells = Vec::new();
    for store in stores {
        for (strategy, cache) in plans {
            for &shards in &SHARD_COUNTS {
                let engine = ServeEngine::new(
                    ServeConfig::new(shards)
                        .with_mode(mode())
                        .with_match_limit(MATCH_LIMIT)
                        .with_service_hold(hold_scale),
                )
                .with_plan_cache(Arc::clone(cache))
                .with_telemetry(Telemetry::new());
                let run = loom_load::run_capacity(&engine, &store.sharded, workload, &config);
                let spec = CellSpec::new(store.name, shards, strategy);
                println!(
                    "capacity {}: knee {:.0} rps ({}), dropped {}/{}",
                    spec.id(),
                    run.knee.knee_rps,
                    run.knee.reason.name(),
                    run.report.error_budget.dropped(),
                    run.report.error_budget.requests,
                );
                cells.push(CapacityCell { spec, run });
            }
        }
    }
    CapacityReport {
        process: ArrivalProcess::Constant.name().to_string(),
        seed: SEED,
        ramp: ramp(),
        fast: fast_mode(),
        cells,
    }
}

/// The sweep's invariants. Fast mode's second ramp step is far past every
/// cell's calibrated capacity, so every cell must find its knee; full mode
/// additionally checks the headline ordering — at 4 shards the LOOM
/// partitioning sustains at least the Hash knee under both plan strategies
/// (LOOM's knee is a lower bound when its ramp never saturated).
fn assert_sweep(report: &CapacityReport) {
    if fast_mode() {
        for cell in &report.cells {
            assert!(
                cell.run.knee.found(),
                "{}: fast-mode ramp must saturate, got {:?}",
                cell.spec.id(),
                cell.run.knee
            );
        }
        return;
    }
    for strategy in ["legacy", "cost_ranked"] {
        let hash = report.knee("hash", 4, strategy).expect("hash/4x swept");
        let loom = report.knee("loom", 4, strategy).expect("loom/4x swept");
        assert!(
            loom.knee_rps >= hash.knee_rps,
            "{strategy}: loom knee {:.0} rps fell below hash {:.0} rps at 4 shards",
            loom.knee_rps,
            hash.knee_rps
        );
    }
}

fn persist(report: &CapacityReport) {
    let json = report.to_json();
    // The bench runs with the package as cwd; the JSON belongs at the
    // workspace root next to the other reports.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_capacity.json");
    std::fs::write(&path, json).expect("BENCH_capacity.json is writable");
    println!("wrote {}", path.display());
    println!("{}", report.text_report());
}

fn bench_capacity(c: &mut Criterion) {
    let BenchSetup {
        workload,
        plans,
        stores,
    } = setup();
    let hold_scale = calibrate_hold(&stores[0], &workload, &plans[0].1);
    let report = sweep(&workload, &plans, &stores, hold_scale);
    assert_sweep(&report);
    persist(&report);

    // The Criterion group times the schedule generator (the only piece whose
    // cost repeats per run without re-driving multi-second ramps).
    let mut group = c.benchmark_group("capacity");
    group.sample_size(10);
    for process in [ArrivalProcess::Poisson, ArrivalProcess::Constant] {
        let config = LoadConfig::new(ramp())
            .with_process(process)
            .with_seed(SEED);
        group.bench_with_input(
            BenchmarkId::new("schedule", process.name()),
            &config,
            |b, config| b.iter(|| black_box(config.planned_offsets_us())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_capacity);
criterion_main!(benches);
