//! Telemetry overhead: the same serve load with and without `loom-obs`.
//!
//! The observability issue allots telemetry a hard budget — attaching the
//! metric registry, spans, and flight recorder may cost the serving layer at
//! most 2% per query at 4 shards. This bench measures that budget directly:
//! the same rooted query load is served over the same LOOM-partitioned
//! store by a plain engine and by an engine with [`Telemetry`] attached,
//! interleaved so thermal drift hits both sides equally.
//!
//! Two numbers come out of the pairing:
//!
//! - the **modelled** overhead — both paths execute identical work under the
//!   `loom-sim` latency model, so parity pins this at zero; the bench
//!   asserts it stays within the 2% budget (in practice: bit-identical);
//! - the **wall-clock** per-query overhead — the physical cost of the extra
//!   atomics and clock reads, recorded (not asserted: wall time on shared CI
//!   hardware is too noisy for a 2% gate) alongside micro-benchmarks of the
//!   primitives themselves: one `Histogram::record`, one armed
//!   [`SpanTimer`], one disarmed (`None`) span.
//!
//! Results land in `BENCH_obs.json` at the workspace root. `LOOM_BENCH_FAST=1`
//! shrinks the graph and sample counts for the CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_bench::scenarios;
use loom_core::workload_registry;
use loom_graph::ordering::StreamOrder;
use loom_graph::GraphStream;
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_obs::{validate_prometheus, Histogram, SpanTimer, Telemetry};
use loom_partition::spec::{LoomConfig, PartitionerSpec};
use loom_partition::traits::partition_stream;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::executor::QueryMode;
use loom_sim::plan::{GraphStatistics, PlanCache, QueryPlanner};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The acceptance point: overhead is measured at 4 worker shards.
const SHARDS: usize = 4;
const PARTITIONS: u32 = 8;
const SEED: u64 = 42;
/// Maximum modelled per-query overhead telemetry may introduce.
const OVERHEAD_BUDGET: f64 = 0.02;

fn fast_mode() -> bool {
    std::env::var("LOOM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn sizes() -> (usize, usize) {
    if fast_mode() {
        (600, 80)
    } else {
        (3_000, 400)
    }
}

/// Paired serve repetitions per side; the median damps scheduler noise.
fn repeats() -> usize {
    if fast_mode() {
        3
    } else {
        11
    }
}

fn micro_iters() -> u64 {
    if fast_mode() {
        200_000
    } else {
        1_000_000
    }
}

fn mode() -> QueryMode {
    QueryMode::Rooted { seed_count: 3 }
}

/// Build the LOOM-partitioned store and compile the workload's plans once.
fn setup() -> (Workload, Arc<PlanCache>, Arc<ShardedStore>) {
    let (vertices, _) = sizes();
    let graph = scenarios::social_graph(vertices, 7);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let workload = scenarios::motif_workload();
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(&graph),
    ));
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let registry = workload_registry(&tpstry);
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(PARTITIONS, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut partitioner = registry.build(&spec).expect("buildable spec");
    let partitioning = partition_stream(partitioner.as_mut(), &stream).expect("stream partitions");
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    (workload, plans, sharded)
}

/// One serve run; `telemetry: None` is the uninstrumented baseline.
fn serve(
    store: &Arc<ShardedStore>,
    workload: &Workload,
    plans: &Arc<PlanCache>,
    telemetry: Option<&Arc<Telemetry>>,
    samples: usize,
) -> ServeReport {
    let mut engine = ServeEngine::new(ServeConfig::new(SHARDS).with_mode(mode()))
        .with_plan_cache(Arc::clone(plans));
    if let Some(telemetry) = telemetry {
        engine = engine.with_telemetry(Arc::clone(telemetry));
    }
    engine.serve_batch(store, workload, samples, SEED)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Average nanoseconds of one call to `f` over `iters` iterations.
fn micro_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

/// Measure the plain/observed pair, assert the modelled budget, and return
/// the `BENCH_obs.json` body.
fn measure_and_persist(
    workload: &Workload,
    plans: &Arc<PlanCache>,
    store: &Arc<ShardedStore>,
    telemetry: &Arc<Telemetry>,
    samples: usize,
) {
    let mut plain_wall = Vec::new();
    let mut observed_wall = Vec::new();
    let mut plain_report = None;
    let mut observed_report = None;
    for _ in 0..repeats() {
        let started = Instant::now();
        plain_report = Some(serve(store, workload, plans, None, samples));
        plain_wall.push(started.elapsed().as_secs_f64());
        let started = Instant::now();
        observed_report = Some(serve(store, workload, plans, Some(telemetry), samples));
        observed_wall.push(started.elapsed().as_secs_f64());
    }
    let plain = plain_report.expect("at least one repeat");
    let observed = observed_report.expect("at least one repeat");

    // Parity first: the observed engine must execute *identical* work. The
    // latency model makes the aggregates deterministic, so any drift here is
    // telemetry leaking into the serving path, not noise.
    assert_eq!(
        observed.aggregate, plain.aggregate,
        "telemetry changed the executed work"
    );
    let modelled_overhead = 1.0 - observed.aggregate_qps() / plain.aggregate_qps();
    assert!(
        modelled_overhead.abs() <= OVERHEAD_BUDGET,
        "modelled per-query overhead {:.4} exceeds the {:.0}% budget",
        modelled_overhead,
        OVERHEAD_BUDGET * 100.0,
    );

    let per_query_us = |wall: f64| wall * 1e6 / samples as f64;
    let plain_us = per_query_us(median(&mut plain_wall));
    let observed_us = per_query_us(median(&mut observed_wall));
    let wall_overhead = observed_us / plain_us - 1.0;

    let hist = Histogram::new();
    let record_ns = micro_ns(micro_iters(), || hist.record(black_box(1_234)));
    let armed = telemetry.stage_histogram(loom_obs::stage::SERVE_EXECUTE);
    let span_some_ns = micro_ns(micro_iters(), || {
        drop(SpanTimer::start(Some(black_box(&armed))));
    });
    let span_none_ns = micro_ns(micro_iters(), || {
        drop(SpanTimer::start(black_box(None::<&Histogram>)));
    });

    let prometheus = telemetry.snapshot().prometheus();
    let series = validate_prometheus(&prometheus).expect("observed run exports valid Prometheus");

    println!(
        "obs_overhead loom/{SHARDS}: modelled {:.2}% (budget {:.0}%), wall {plain_us:.1} -> \
         {observed_us:.1} us/query ({:+.2}%), record {record_ns:.0} ns, span armed \
         {span_some_ns:.0} ns / disarmed {span_none_ns:.1} ns, {} prom series",
        modelled_overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        wall_overhead * 100.0,
        series.len(),
    );
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"samples\": {samples},\n  \"seed\": {SEED},\n  \
         \"shards\": {SHARDS},\n  \"partitions\": {PARTITIONS},\n  \"repeats\": {},\n  \
         \"fast\": {},\n  \"modelled\": {{\"plain_qps\": {:.2}, \"observed_qps\": {:.2}, \
         \"overhead_frac\": {:.6}, \"budget_frac\": {OVERHEAD_BUDGET}}},\n  \
         \"wall\": {{\"plain_per_query_us\": {plain_us:.2}, \"observed_per_query_us\": \
         {observed_us:.2}, \"overhead_frac\": {wall_overhead:.4}}},\n  \
         \"micro_ns\": {{\"histogram_record\": {record_ns:.1}, \"span_armed\": \
         {span_some_ns:.1}, \"span_disarmed\": {span_none_ns:.2}}},\n  \
         \"prometheus_series\": {}\n}}\n",
        repeats(),
        fast_mode(),
        plain.aggregate_qps(),
        observed.aggregate_qps(),
        modelled_overhead,
        series.len(),
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    std::fs::write(&path, json).expect("BENCH_obs.json is writable");
    println!("wrote {}", path.display());
}

fn bench_obs(c: &mut Criterion) {
    let (workload, plans, store) = setup();
    let (_, samples) = sizes();
    let telemetry = Telemetry::new();
    measure_and_persist(&workload, &plans, &store, &telemetry, samples);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(3);
    group.bench_function("serve/plain", |b| {
        b.iter(|| black_box(serve(&store, &workload, &plans, None, samples)))
    });
    group.bench_function("serve/observed", |b| {
        b.iter(|| black_box(serve(&store, &workload, &plans, Some(&telemetry), samples)))
    });
    let hist = Histogram::new();
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(1_234)))
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
