//! Micro-bench of the number-theoretic signature operations on the matcher's
//! hot path: full computation, incremental extension, and divisibility.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_graph::generators::regular::{cycle_graph, path_graph};
use loom_graph::Label;
use loom_motif::signature::{PrimeTable, Signature};
use std::hint::black_box;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn bench_signatures(c: &mut Criterion) {
    let table = PrimeTable::new(8);
    let small = path_graph(4, &[l(0), l(1), l(2), l(3)]);
    let larger = cycle_graph(8, &[l(0), l(1), l(2), l(3)]);
    let small_sig = table.signature_of(&small).expect("fits alphabet");
    let larger_sig = table.signature_of(&larger).expect("fits alphabet");

    c.bench_function("signature/compute_path4", |b| {
        b.iter(|| black_box(table.signature_of(&small).expect("ok")))
    });
    c.bench_function("signature/compute_cycle8", |b| {
        b.iter(|| black_box(table.signature_of(&larger).expect("ok")))
    });
    c.bench_function("signature/incremental_edge", |b| {
        b.iter(|| {
            let mut s = small_sig.clone();
            s.multiply(table.edge_factor(l(1), l(2)).expect("ok"));
            black_box(s)
        })
    });
    c.bench_function("signature/divides", |b| {
        b.iter(|| black_box(small_sig.divides(&larger_sig)))
    });
    c.bench_function("signature/single_vertex", |b| {
        b.iter(|| black_box(Signature::single_vertex(&table, l(2)).expect("ok")))
    });
}

criterion_group!(benches, bench_signatures);
criterion_main!(benches);
