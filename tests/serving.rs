//! Concurrency test suite for the `loom-serve` engine.
//!
//! Two properties matter:
//!
//! * **parity** — sharded parallel execution returns exactly the same
//!   aggregate match counts and traversal metrics as the sequential
//!   `QueryExecutor` on identical seeds (the engine parallelises the work,
//!   it must not change the answers);
//! * **ingest-while-serve** — queries keep executing correctly while the
//!   streaming partitioner publishes new epochs concurrently: no panics, no
//!   torn reads, every query pinned to exactly one published epoch.

use loom::prelude::*;
use loom_graph::generators::{barabasi_albert, GeneratorConfig};
use loom_partition::hash::HashConfig;
use loom_partition::ldg::LdgConfig;
use loom_partition::spec::LoomConfig;
use std::sync::Arc;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn social_graph(vertices: usize, seed: u64) -> LabelledGraph {
    barabasi_albert(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        3,
    )
    .expect("valid BA parameters")
}

fn motif_workload() -> Workload {
    let q_path = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
    let q_cycle = PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)]).unwrap();
    let q_edge = PatternQuery::path(QueryId::new(2), &[l(0), l(1)]).unwrap();
    Workload::new(vec![(q_path, 4.0), (q_cycle, 2.0), (q_edge, 1.0)]).unwrap()
}

/// Stream a graph through a partitioner and return (graph, partitioning).
fn partitioned(graph: &LabelledGraph, spec: PartitionerSpec, workload: &Workload) -> Partitioning {
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .build()
        .unwrap();
    let stream = GraphStream::from_graph(graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream).unwrap();
    session.into_partitioning().unwrap()
}

#[test]
fn sharded_execution_matches_sequential_metrics_exactly() {
    let graph = social_graph(600, 11);
    let workload = motif_workload();
    let specs = vec![
        PartitionerSpec::Hash(HashConfig::new(8, graph.vertex_count())),
        PartitionerSpec::Loom(LoomConfig::new(8, graph.vertex_count()).with_window_size(64)),
    ];
    for spec in specs {
        let partitioning = partitioned(&graph, spec, &workload);
        let mode = QueryMode::Rooted { seed_count: 3 };
        let sequential_store = PartitionedStore::new(graph.clone(), partitioning.clone());
        let executor = QueryExecutor::default().with_mode(mode);
        let expected = executor.execute_workload(&sequential_store, &workload, 120, 42);

        let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
        for workers in [1usize, 2, 4, 8] {
            let engine = ServeEngine::new(ServeConfig::new(workers).with_mode(mode));
            let report = engine.serve_batch(&sharded, &workload, 120, 42);
            assert_eq!(
                report.aggregate, expected,
                "workers={workers}: sharded aggregate diverged from sequential"
            );
            assert_eq!(report.shards.iter().map(|s| s.queries).sum::<usize>(), 120);
        }
    }
}

#[test]
fn parity_holds_under_full_enumeration_too() {
    let graph = social_graph(200, 3);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Ldg(LdgConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let sequential_store = PartitionedStore::new(graph.clone(), partitioning.clone());
    let executor = QueryExecutor::default(); // FullEnumeration
    let expected = executor.execute_workload(&sequential_store, &workload, 30, 7);

    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(ServeConfig::new(4).with_mode(QueryMode::FullEnumeration));
    let report = engine.serve_batch(&sharded, &workload, 30, 7);
    assert_eq!(report.aggregate, expected);
}

#[test]
fn four_workers_beat_one_by_more_than_one_point_five_x() {
    // The acceptance bar: on one LOOM partitioning, modelled aggregate QPS
    // with 4 worker shards is > 1.5× the 1-shard figure. The metric is
    // deterministic (latency-model makespan), so this cannot flake.
    let graph = social_graph(800, 5);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Loom(LoomConfig::new(8, graph.vertex_count()).with_window_size(64)),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let mode = QueryMode::Rooted { seed_count: 3 };
    let qps = |workers: usize| {
        ServeEngine::new(ServeConfig::new(workers).with_mode(mode))
            .serve_batch(&sharded, &workload, 200, 13)
            .aggregate_qps()
    };
    let one = qps(1);
    let four = qps(4);
    assert!(
        four > 1.5 * one,
        "expected >1.5x scaling, got 1 shard: {one:.0} qps, 4 shards: {four:.0} qps"
    );
}

#[test]
fn session_facade_drives_the_sharded_engine() {
    let graph = social_graph(300, 9);
    let workload = motif_workload();
    let spec = PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(64));
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .query_mode(QueryMode::Rooted { seed_count: 2 })
        .build()
        .unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    let serving = session.serve(graph).unwrap();
    let request = QueryRequest::workload(80).with_seed(21);
    let sequential = serving.run(request).metrics;

    let sharded = serving.sharded(4);
    let (report, response) = sharded.serve_request(request);
    assert_eq!(report.aggregate, sequential);
    assert_eq!(response.metrics, sequential);
    assert!(report.p99_latency_us >= report.p50_latency_us);
    // Both handles expose the same compiled plan cache instance.
    let a = serving.plan_cache().expect("plans compiled");
    let b = sharded.plan_cache().expect("plans shared");
    assert!(std::sync::Arc::ptr_eq(a, b));
    // Explicit-workload path agrees as well.
    let explicit = sharded.serve(&workload, 80, 21);
    assert_eq!(explicit.aggregate, sequential);
}

#[test]
fn queries_survive_epoch_swaps_without_torn_reads() {
    // Ingest-while-serve: a partitioner keeps consuming the stream and
    // publishing epochs while the engine serves queries. Every query must
    // pin exactly one epoch (snapshot consistency) and the run must cover
    // several distinct epochs.
    let graph = social_graph(500, 17);
    let workload = motif_workload();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);

    let spec = PartitionerSpec::Ldg(LdgConfig::new(4, graph.vertex_count()));
    let registry = loom_partition::spec::PartitionerRegistry::baselines();
    let mut partitioner = registry.build(&spec).unwrap();

    // Seed epoch 1 from a small stream prefix.
    let elements = stream.elements();
    let prefix = elements.len() / 10;
    let mut grown = GraphStream::from_elements(elements[..prefix].to_vec()).materialise();
    partitioner.ingest_batch(&elements[..prefix]).unwrap();
    let epochs = EpochStore::new(ShardedStore::from_parts(&grown, &partitioner.snapshot()));

    let engine = ServeEngine::new(
        ServeConfig::new(4)
            .with_mode(QueryMode::Rooted { seed_count: 2 })
            .with_queue_capacity(8),
    );

    let report = std::thread::scope(|scope| {
        let epochs_ref = &epochs;
        let ingest = scope.spawn(move || {
            for chunk in elements[prefix..].chunks(200) {
                partitioner.ingest_batch(chunk).unwrap();
                for element in chunk {
                    match *element {
                        StreamElement::AddVertex { id, label } => {
                            grown.insert_vertex(id, label);
                        }
                        StreamElement::AddEdge { source, target } => {
                            grown.add_edge_idempotent(source, target).unwrap();
                        }
                        // `from_graph` streams are insert-only.
                        _ => unreachable!("graph streams carry no mutations"),
                    }
                }
                epochs_ref.publish(ShardedStore::from_parts(&grown, &partitioner.snapshot()));
            }
        });
        let report = engine.serve_epochs(&epochs, &workload, 400, 23);
        ingest.join().expect("ingest thread panicked");
        report
    });

    assert_eq!(report.aggregate.queries_executed, 400);
    assert!(!report.epochs_observed.is_empty());
    // Every pinned epoch was a published one.
    let last = epochs.current_epoch();
    assert!(report.epochs_observed.iter().all(|&e| e >= 1 && e <= last));
    assert!(report.aggregate.total_traversals > 0);
    // Serving continued after the swaps: the final epoch serves correctly too.
    let final_report = engine.serve_batch(&epochs.load(), &workload, 50, 31);
    assert_eq!(final_report.aggregate.queries_executed, 50);
}

#[test]
fn epoch_pinned_results_are_reproducible_after_the_run() {
    // Determinism across the swap: re-executing the same (query, seed) pairs
    // against the *final* epoch sequentially gives the same answer the
    // engine produces for that snapshot — i.e. concurrent serving did not
    // corrupt the snapshot.
    let graph = social_graph(300, 29);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let epochs = EpochStore::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine =
        ServeEngine::new(ServeConfig::new(4).with_mode(QueryMode::Rooted { seed_count: 2 }));
    let a = engine.serve_epochs(&epochs, &workload, 100, 37);
    let b = engine.serve_epochs(&epochs, &workload, 100, 37);
    assert_eq!(a.aggregate, b.aggregate);
    assert_eq!(a.epochs_observed, vec![1]);
}
