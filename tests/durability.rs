//! Crash-matrix integration suite for the `loom-store` durability
//! subsystem, driven through the `Session` façade:
//!
//! * **bit identity** — checkpoint → recover → re-encode reproduces every
//!   shard blob byte-for-byte (property-based over random graphs);
//! * **torn WAL tail** — a crash mid-append loses at most the unacknowledged
//!   record: the tail is truncated, never papered over, and no records are
//!   invented;
//! * **torn checkpoint** — a crash mid-checkpoint (manifest never written)
//!   leaves the previous checkpoint authoritative;
//! * **restart-and-serve parity** — kill mid-ingest, `Session::recover`,
//!   serve the same workload: identical match counts and aggregate metrics
//!   to an uninterrupted session at the same checkpoint boundary, with the
//!   pre-crash `epoch_seq` flowing into the serve report;
//! * **mutation durability** — kill mid-churn (deletes and relabels in
//!   flight): the recovered state is bit-identical to an uncrashed run,
//!   deletes included, and a compacted store's checkpoint round-trips with
//!   every tombstone physically removed.

use loom::loom_store::checkpoint::{
    load_checkpoint, write_checkpoint, CHECKPOINT_DIR, MANIFEST_FILE,
};
use loom::loom_store::codec::{encode_shard, encode_tail};
use loom::prelude::*;
use loom_graph::generators::{barabasi_albert, GeneratorConfig};
use loom_partition::partition::PartitionId;
use loom_partition::spec::LoomConfig;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_sim::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn social_graph(vertices: usize, seed: u64) -> LabelledGraph {
    barabasi_albert(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        3,
    )
    .expect("valid BA parameters")
}

fn motif_workload() -> Workload {
    let q_path = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
    let q_cycle = PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)]).unwrap();
    let q_edge = PatternQuery::path(QueryId::new(2), &[l(0), l(1)]).unwrap();
    Workload::new(vec![(q_path, 4.0), (q_cycle, 2.0), (q_edge, 1.0)]).unwrap()
}

fn tmproot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loom-dur-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn loom_builder(graph: &LabelledGraph) -> SessionBuilder {
    Session::builder(PartitionerSpec::Loom(
        LoomConfig::new(3, graph.vertex_count()).with_window_size(8),
    ))
    .workload(motif_workload())
    .chunk_size(40)
}

fn assignment_vec(partitioning: &Partitioning) -> Vec<(VertexId, PartitionId)> {
    let mut pairs: Vec<_> = partitioning.assignments().collect();
    pairs.sort_unstable();
    pairs
}

/// Every shard blob (and the tail) of `a` re-encodes byte-identically to
/// `b` — the strongest equality the checkpoint format defines.
fn assert_bit_identical(a: &ShardedStore, b: &ShardedStore) {
    assert_eq!(a.shard_count(), b.shard_count());
    for p in 0..a.shard_count() {
        let p = PartitionId::new(p);
        assert_eq!(
            encode_shard(a, p).unwrap(),
            encode_shard(b, p).unwrap(),
            "shard {p} blob differs"
        );
    }
    assert_eq!(encode_tail(a), encode_tail(b), "tail blob differs");
}

#[test]
fn kill_mid_ingest_recover_and_serve_identically() {
    let root = tmproot("e2e");
    let graph = social_graph(300, 11);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let elements = stream.elements();
    let cut = elements.len() * 2 / 3;

    // Durable run: ingest two thirds, checkpoint, keep ingesting, then
    // "crash" (drop without another checkpoint) with a torn WAL tail.
    let mut session = loom_builder(&graph).with_durability(&root).build().unwrap();
    session.ingest_batch(&elements[..cut]).unwrap();
    let seq = session.checkpoint().unwrap();
    assert_eq!(seq, 1);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 1);
    session.ingest_batch(&elements[cut..]).unwrap();
    let acknowledged = session.wal_records().unwrap();
    drop(session);
    let wal_path = root.join("wal.log");
    let mut raw = std::fs::read(&wal_path).unwrap();
    raw.extend_from_slice(&[0xBE, 0xEF, 0x00]); // crash mid-append
    std::fs::write(&wal_path, &raw).unwrap();

    // Uninterrupted control at the same checkpoint boundary.
    let mut control = loom_builder(&graph).build().unwrap();
    control.ingest_batch(&elements[..cut]).unwrap();
    let control_snapshot = control.snapshot();
    let control_graph = GraphStream::from_elements(elements[..cut].to_vec()).materialise();
    let control_store = ShardedStore::from_parts(&control_graph, &control_snapshot);

    // Recover and compare.
    let recovered = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    let report = recovered.report();
    assert_eq!(report.epoch_seq, 1);
    assert!(report.checkpoint_found);
    assert_eq!(report.wal_records, acknowledged);
    assert_eq!(report.wal_records_in_checkpoint, 1);
    assert_eq!(report.wal_truncated_bytes, 3);
    assert_eq!(recovered.store().epoch(), 1);
    assert_bit_identical(recovered.store(), &control_store);

    // Restart-and-serve: identical reports — same match counts, same
    // traversals, and the pre-crash epoch_seq on every serving shard. The
    // control serves the *snapshot* store (buffered window vertices still
    // unassigned, exactly as checkpointed) — `Serving::serve` would flush
    // them, which is post-crash work the checkpoint never saw.
    let samples = 200;
    let recovered_report = recovered.sharded(2).serve(&motif_workload(), samples, 7);
    let stats = GraphStatistics::from_graph(&control_graph);
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::new(PlanStrategy::default()),
        &motif_workload(),
        &stats,
    ));
    // Mirror the engine configuration `Recovered::sharded` derives from the
    // session's (default-configured) executor.
    let executor = QueryExecutor::new(LatencyModel::default());
    let control_engine = ServeEngine::new(
        ServeConfig::new(2)
            .with_mode(executor.mode())
            .with_latency(executor.latency_model())
            .with_match_limit(executor.match_limit()),
    )
    .with_plan_cache(plans);
    let control_report =
        control_engine.serve_batch(&Arc::new(control_store), &motif_workload(), samples, 7);
    assert_eq!(recovered_report.aggregate, control_report.aggregate);
    assert!(recovered_report.aggregate.matches_found > 0);
    assert_eq!(recovered_report.queries, samples);
    for shard in recovered_report
        .shards
        .iter()
        .filter(|shard| shard.queries > 0)
    {
        assert_eq!(
            shard.epoch_seq,
            Some(1),
            "serving must stay pinned at recovery epoch"
        );
    }

    // The recovered session keeps going: the next checkpoint continues the
    // epoch sequence instead of restarting it.
    let mut session = recovered.into_session();
    session
        .ingest(&StreamElement::AddVertex {
            id: VertexId::new(1_000_000),
            label: l(0),
        })
        .unwrap();
    assert_eq!(session.checkpoint().unwrap(), 2);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 2);
    drop(session);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A session for the deletion-churn scenario: LOOM partitioning the grown
/// graph, serving the scenario's `abc` workload.
fn churn_builder(graph: &LabelledGraph) -> SessionBuilder {
    Session::builder(PartitionerSpec::Loom(
        LoomConfig::new(3, graph.vertex_count()).with_window_size(8),
    ))
    .workload(DeletionChurnScenario::workload())
    .chunk_size(40)
}

#[test]
fn kill_mid_churn_recovers_deletes_bit_identically() {
    let root = tmproot("churn");
    let scenario = DeletionChurnScenario {
        background_vertices: 150,
        instances: 12,
        dissolve_fraction: 0.5,
        relabel_fraction: 0.2,
        seed: 17,
    };
    let run = scenario.build().unwrap();
    let build = run.build_stream.elements();
    let mid = run.dissolve.len() / 2;
    assert!(mid > 0, "scenario must produce a two-batch dissolve stream");

    // Durable run: grow, start dissolving, checkpoint mid-churn, finish the
    // dissolve, then "crash" with a torn WAL tail.
    let mut session = churn_builder(&run.graph)
        .with_durability(&root)
        .build()
        .unwrap();
    session.ingest_batch(build).unwrap();
    session.ingest_batch(&run.dissolve[..mid]).unwrap();
    assert_eq!(session.checkpoint().unwrap(), 1);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 1);
    session.ingest_batch(&run.dissolve[mid..]).unwrap();
    let acknowledged = session.wal_records().unwrap();
    drop(session);
    let wal_path = root.join("wal.log");
    let mut raw = std::fs::read(&wal_path).unwrap();
    raw.extend_from_slice(&[0xBE, 0xEF, 0x00]);
    std::fs::write(&wal_path, &raw).unwrap();

    // Uncrashed control at the same mid-churn checkpoint boundary.
    let mut control = churn_builder(&run.graph).build().unwrap();
    control.ingest_batch(build).unwrap();
    control.ingest_batch(&run.dissolve[..mid]).unwrap();
    let mut mid_elements = build.to_vec();
    mid_elements.extend(run.dissolve[..mid].iter().cloned());
    let mid_graph = GraphStream::from_elements(mid_elements).materialise();
    assert!(
        mid_graph.vertex_count() < run.graph.vertex_count(),
        "the checkpoint boundary must already contain deletes"
    );
    let control_store = ShardedStore::from_parts(&mid_graph, &control.snapshot());

    // The mid-churn checkpoint is bit-identical to the uncrashed control —
    // deletes applied physically, never as tombstones.
    let recovered = churn_builder(&run.graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    let report = recovered.report();
    assert_eq!(report.epoch_seq, 1);
    assert_eq!(report.wal_records, acknowledged);
    assert_eq!(report.wal_records_in_checkpoint, 2);
    assert_eq!(report.wal_truncated_bytes, 3);
    assert_bit_identical(recovered.store(), &control_store);

    // Restart-and-serve parity on the scenario workload.
    let samples = 150;
    let workload = DeletionChurnScenario::workload();
    let recovered_report = recovered.sharded(2).serve(&workload, samples, 7);
    let stats = GraphStatistics::from_graph(&mid_graph);
    let plans = Arc::new(PlanCache::compile(
        &QueryPlanner::new(PlanStrategy::default()),
        &workload,
        &stats,
    ));
    let executor = QueryExecutor::new(LatencyModel::default());
    let control_engine = ServeEngine::new(
        ServeConfig::new(2)
            .with_mode(executor.mode())
            .with_latency(executor.latency_model())
            .with_match_limit(executor.match_limit()),
    )
    .with_plan_cache(plans);
    let control_report =
        control_engine.serve_batch(&Arc::new(control_store), &workload, samples, 7);
    assert_eq!(recovered_report.aggregate, control_report.aggregate);
    assert!(recovered_report.aggregate.matches_found > 0);

    // Recovery replayed the *entire* acknowledged history — including the
    // post-checkpoint dissolve batch — so the next checkpoint equals an
    // uncrashed session's view of the fully dissolved graph.
    let mut session = recovered.into_session();
    assert_eq!(session.checkpoint().unwrap(), 2);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 2);
    drop(session);
    control.ingest_batch(&run.dissolve[mid..]).unwrap();
    // Materialise the control graph from the stream itself so its adjacency
    // order matches what both sessions ingested (`run.final_graph` is the
    // same graph but in generator order).
    let mut all_elements = build.to_vec();
    all_elements.extend(run.dissolve.iter().cloned());
    let final_graph = GraphStream::from_elements(all_elements).materialise();
    let final_store = ShardedStore::from_parts(&final_graph, &control.snapshot());
    let healed = churn_builder(&run.graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(healed.epoch_seq(), 2);
    assert_bit_identical(healed.store(), &final_store);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn compacted_store_checkpoints_with_tombstones_physically_removed() {
    let root = tmproot("compact-ckpt");
    std::fs::create_dir_all(&root).unwrap();
    let run = DeletionChurnScenario {
        background_vertices: 150,
        instances: 12,
        dissolve_fraction: 0.5,
        relabel_fraction: 0.2,
        seed: 23,
    }
    .build()
    .unwrap();
    let mut ldg = LdgPartitioner::new(LdgConfig::new(3, run.graph.vertex_count())).unwrap();
    let partitioning = partition_stream(&mut ldg, &run.build_stream).unwrap();
    let store = ShardedStore::from_parts(&run.graph, &partitioning);
    let tombstoned = store.apply_mutations(&run.dissolve).store;
    assert!(tombstoned.tombstoned_vertices() > 0);
    let compacted = tombstoned.compact(0.0).store.with_epoch(5);
    assert_eq!(compacted.tombstoned_vertices(), 0);
    assert_eq!(compacted.vertex_count(), run.final_graph.vertex_count());

    // Round-trip through the checkpoint codec: the image loads, verifies,
    // and re-encodes bit-identically — the dead slots are physically gone,
    // and what comes back is exactly the from-scratch final graph.
    let meta = write_checkpoint(&root, &compacted, 3, "test-spec").unwrap();
    assert_eq!(meta.vertices, run.final_graph.vertex_count() as u64);
    let dir = root.join(CHECKPOINT_DIR).join(format!("{:010}", 5));
    let loaded = load_checkpoint(&dir).unwrap();
    assert_bit_identical(&loaded.store, &compacted);
    assert_eq!(loaded.graph.vertex_count(), run.final_graph.vertex_count());
    assert_eq!(loaded.graph.edges_sorted(), run.final_graph.edges_sorted());
    // Relabels survive the round trip too.
    for v in run.final_graph.vertices_sorted() {
        assert_eq!(loaded.graph.label(v), run.final_graph.label(v));
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn torn_wal_tail_loses_only_the_unacknowledged_batch() {
    let root = tmproot("torn-tail");
    let graph = social_graph(120, 3);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let mut session = loom_builder(&graph).with_durability(&root).build().unwrap();
    session.ingest_stream(&stream).unwrap();
    let acknowledged = session.wal_records().unwrap();
    let ingested = session.stats().vertices_ingested;
    drop(session);

    // Crash mid-append: half a frame header, then half a "record" whose CRC
    // cannot match.
    let wal_path = root.join("wal.log");
    let mut raw = std::fs::read(&wal_path).unwrap();
    raw.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 0xAA, 0xBB]);
    std::fs::write(&wal_path, &raw).unwrap();

    let recovered = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(recovered.report().wal_records, acknowledged);
    assert_eq!(recovered.report().wal_truncated_bytes, 10);
    assert!(!recovered.report().checkpoint_found);
    // Nothing invented: the replayed session saw exactly the acknowledged
    // elements, and a second recovery is stable (truncation already done).
    let mut session = recovered.into_session();
    assert_eq!(session.stats().vertices_ingested, ingested);
    assert_eq!(session.wal_records(), Some(acknowledged));
    session.ingest_batch(&[]).unwrap();
    drop(session);
    let again = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(again.report().wal_records, acknowledged + 1);
    assert_eq!(again.report().wal_truncated_bytes, 0);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_manifest_falls_back_to_the_previous_checkpoint() {
    let root = tmproot("torn-ckpt");
    let graph = social_graph(150, 5);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let elements = stream.elements();
    let mut session = loom_builder(&graph).with_durability(&root).build().unwrap();
    session
        .ingest_batch(&elements[..elements.len() / 2])
        .unwrap();
    session.checkpoint().unwrap();
    session
        .ingest_batch(&elements[elements.len() / 2..])
        .unwrap();
    let seq = session.checkpoint().unwrap();
    assert_eq!(seq, 2);
    session.sync_durability(Duration::from_secs(30)).unwrap();
    drop(session);

    // Crash mid-checkpoint of epoch 2: its manifest never hit the disk.
    let manifest = root
        .join(CHECKPOINT_DIR)
        .join(format!("{seq:010}"))
        .join(MANIFEST_FILE);
    std::fs::remove_file(&manifest).unwrap();

    let recovered = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(recovered.epoch_seq(), 1);
    assert_eq!(recovered.report().invalid_checkpoints_skipped, 1);
    // The full WAL still replays: the live session lost nothing.
    let mut session = recovered.into_session();
    assert_eq!(session.stats().vertices_ingested, graph.vertex_count());
    // And the next checkpoint seals a fresh epoch *after* the torn one.
    assert_eq!(session.checkpoint().unwrap(), 2);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 2);
    drop(session);
    let healed = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(healed.epoch_seq(), 2);
    assert_eq!(healed.report().invalid_checkpoints_skipped, 0);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn builder_refuses_to_clobber_existing_durable_state() {
    let root = tmproot("noclobber");
    let graph = social_graph(60, 2);
    let mut session = loom_builder(&graph).with_durability(&root).build().unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    drop(session);
    let err = loom_builder(&graph)
        .with_durability(&root)
        .build()
        .expect_err("existing WAL must not be clobbered");
    assert!(matches!(err, SessionError::Durability(_)));
    assert!(err.to_string().contains("recover"));
    // Spec mismatch at recovery is equally rejected once a checkpoint exists.
    let mut session = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap()
        .into_session();
    session.checkpoint().unwrap();
    session.sync_durability(Duration::from_secs(30)).unwrap();
    drop(session);
    let mismatched = Session::builder(PartitionerSpec::Hash(
        loom_partition::hash::HashConfig::new(3, graph.vertex_count()),
    ))
    .with_durability(&root)
    .recover();
    assert!(matches!(mismatched, Err(SessionError::Durability(_))));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn fresh_root_recovers_to_an_empty_session() {
    let root = tmproot("fresh");
    let graph = social_graph(80, 9);
    let recovered = loom_builder(&graph)
        .with_durability(&root)
        .recover()
        .unwrap();
    assert_eq!(recovered.epoch_seq(), 0);
    assert!(!recovered.report().checkpoint_found);
    assert_eq!(recovered.store().vertex_count(), 0);
    let mut session = recovered.into_session();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    assert_eq!(session.checkpoint().unwrap(), 1);
    assert_eq!(session.sync_durability(Duration::from_secs(30)).unwrap(), 1);
    std::fs::remove_dir_all(&root).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint → recover → re-encode is bit-identical for random graphs,
    /// partitioner states, and checkpoint boundaries.
    #[test]
    fn checkpoint_recovery_roundtrips_bit_identically(
        seed in 0u64..1000,
        vertices in 40usize..140,
        cut_percent in 30usize..100,
    ) {
        let root = tmproot(&format!("prop-{seed}-{vertices}-{cut_percent}"));
        let graph = social_graph(vertices, seed);
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let elements = stream.elements();
        let cut = (elements.len() * cut_percent / 100).max(1);

        let mut session = loom_builder(&graph)
            .with_durability(&root)
            .build()
            .unwrap();
        session.ingest_batch(&elements[..cut]).unwrap();
        session.checkpoint().unwrap();
        session.sync_durability(Duration::from_secs(30)).unwrap();
        session.ingest_batch(&elements[cut..]).unwrap();

        let mut control = loom_builder(&graph).build().unwrap();
        control.ingest_batch(&elements[..cut]).unwrap();
        let control_graph =
            GraphStream::from_elements(elements[..cut].to_vec()).materialise();
        let control_store =
            ShardedStore::from_parts(&control_graph, &control.snapshot());
        drop(session);

        let recovered = loom_builder(&graph)
            .with_durability(&root)
            .recover()
            .unwrap();
        prop_assert_eq!(recovered.epoch_seq(), 1);
        assert_bit_identical(recovered.store(), &control_store);
        // The replayed partitioner also reproduces the *current* (post-
        // checkpoint) state: snapshots at the full stream agree.
        control.ingest_batch(&elements[cut..]).unwrap();
        let mut session = recovered.into_session();
        prop_assert_eq!(
            assignment_vec(&session.snapshot()),
            assignment_vec(&control.snapshot())
        );
        prop_assert_eq!(
            session.stats().vertices_ingested,
            control.stats().vertices_ingested
        );
        session.ingest_batch(&[]).unwrap(); // still append-ready
        drop(session);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
