//! Property-based tests over the core invariants of the LOOM stack.
//!
//! These use `proptest` to generate random graphs, workloads and streams and
//! check the invariants the rest of the system silently relies on:
//! signature algebra, canonical-code stability, stream faithfulness,
//! partitioner completeness and balance, and TPSTry++ support monotonicity.

use loom::prelude::*;
use loom_graph::VertexId;
use loom_motif::canonical::canonical_code;
use loom_motif::isomorphism::are_isomorphic;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Strategy: a small random connected labelled graph described by a label
/// sequence (path backbone) plus extra random edges.
fn small_graph_strategy() -> impl Strategy<Value = LabelledGraph> {
    (
        proptest::collection::vec(0u32..4, 2..8),
        proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    )
        .prop_map(|(labels, extra_edges)| {
            let mut g = LabelledGraph::new();
            let vertices: Vec<VertexId> = labels
                .iter()
                .map(|&l| g.add_vertex(Label::new(l)))
                .collect();
            for w in vertices.windows(2) {
                let _ = g.add_edge_idempotent(w[0], w[1]);
            }
            for (a, b) in extra_edges {
                if a < vertices.len() && b < vertices.len() && a != b {
                    let _ = g.add_edge_idempotent(vertices[a], vertices[b]);
                }
            }
            g
        })
}

/// Relabel vertex ids of a graph with an arbitrary offset + shuffle, keeping
/// the structure identical.
fn shuffle_ids(graph: &LabelledGraph, seed: u64) -> LabelledGraph {
    let vertices = graph.vertices_sorted();
    let mut new_ids: Vec<u64> = (0..vertices.len() as u64).map(|i| 1_000 + i * 7).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    new_ids.shuffle(&mut rng);
    let mapping: std::collections::HashMap<VertexId, VertexId> = vertices
        .iter()
        .zip(new_ids.iter())
        .map(|(&old, &new)| (old, VertexId::new(new)))
        .collect();
    let mut out = LabelledGraph::new();
    for &v in &vertices {
        out.insert_vertex(mapping[&v], graph.label(v).expect("labelled"));
    }
    for e in graph.edges_sorted() {
        out.add_edge(mapping[&e.lo], mapping[&e.hi])
            .expect("valid edge");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical code is invariant under vertex-id relabelling, and equal
    /// codes imply isomorphism for these small graphs.
    #[test]
    fn canonical_code_is_id_invariant(graph in small_graph_strategy(), seed in 0u64..1000) {
        let shuffled = shuffle_ids(&graph, seed);
        prop_assert_eq!(canonical_code(&graph), canonical_code(&shuffled));
        prop_assert!(are_isomorphic(&graph, &shuffled));
    }

    /// A sub-graph's signature always divides its super-graph's signature.
    #[test]
    fn signature_divisibility_respects_subgraphs(graph in small_graph_strategy()) {
        let table = PrimeTable::new(4);
        let full = table.signature_of(&graph).expect("alphabet fits");
        // Drop the highest-id vertex to build a strict sub-graph.
        let vertices = graph.vertices_sorted();
        let subset: Vec<VertexId> = vertices[..vertices.len() - 1].to_vec();
        let sub = induced_subgraph(&graph, subset);
        let sub_sig = table.signature_of(&sub).expect("alphabet fits");
        prop_assert!(sub_sig.divides(&full));
        // Divisibility is reflexive and antisymmetric on factor counts.
        prop_assert!(full.divides(&full));
        if sub_sig.factor_count() < full.factor_count() {
            prop_assert!(!full.divides(&sub_sig));
        }
    }

    /// Streams reconstruct their source graph under any random ordering, and
    /// edges never precede their endpoints.
    #[test]
    fn streams_are_faithful(graph in small_graph_strategy(), seed in 0u64..1000) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let rebuilt = stream.materialise();
        prop_assert_eq!(rebuilt.vertex_count(), graph.vertex_count());
        prop_assert_eq!(rebuilt.edges_sorted(), graph.edges_sorted());
        let mut seen = std::collections::HashSet::new();
        for element in &stream {
            match *element {
                StreamElement::AddVertex { id, .. } => { seen.insert(id); }
                StreamElement::AddEdge { source, target } => {
                    prop_assert!(seen.contains(&source) && seen.contains(&target));
                }
                // `from_graph` streams are insert-only.
                _ => prop_assert!(false, "graph streams carry no mutations"),
            }
        }
    }

    /// Every streaming partitioner assigns every vertex exactly once, to a
    /// valid partition, and LDG stays within its capacity.
    #[test]
    fn streaming_partitioners_are_complete(
        graph in small_graph_strategy(),
        seed in 0u64..1000,
        k in 2u32..5,
    ) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let n = graph.vertex_count();

        let mut ldg = LdgPartitioner::new(LdgConfig::new(k, n)).expect("valid");
        let ldg_part = partition_stream(&mut ldg, &stream).expect("ldg ok");
        prop_assert_eq!(ldg_part.assigned_count(), n);
        for p in ldg_part.partitions() {
            prop_assert!(ldg_part.size(p) <= ldg_part.capacity());
        }

        let mut hash = HashPartitioner::new(k, n.max(1)).expect("valid");
        let hash_part = partition_stream(&mut hash, &stream).expect("hash ok");
        prop_assert_eq!(hash_part.assigned_count(), n);

        let mut fennel = FennelPartitioner::new(FennelConfig::new(k, n, graph.edge_count()))
            .expect("valid");
        let fennel_part = partition_stream(&mut fennel, &stream).expect("fennel ok");
        prop_assert_eq!(fennel_part.assigned_count(), n);
        for v in graph.vertices_sorted() {
            prop_assert!(ldg_part.partition_of(v).expect("assigned").0 < k);
            prop_assert!(fennel_part.partition_of(v).expect("assigned").0 < k);
        }
    }

    /// LOOM assigns every vertex exactly once no matter the window size or
    /// motif threshold, and its cluster bookkeeping never loses a vertex.
    #[test]
    fn loom_is_complete_for_any_window(
        graph in small_graph_strategy(),
        window in 1usize..16,
        threshold in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let q = PatternQuery::path(QueryId::new(0), &[Label::new(0), Label::new(1), Label::new(2)])
            .expect("valid query");
        let workload = Workload::uniform(vec![q]).expect("valid workload");
        let tpstry = MotifMiner::default().mine(&workload).expect("mines");
        let config = LoomConfig::new(3, graph.vertex_count())
            .with_window_size(window)
            .with_motif_threshold(threshold);
        let mut loom = LoomPartitioner::new(config, &tpstry).expect("valid");
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let partitioning = partition_stream(&mut loom, &stream).expect("loom ok");
        prop_assert_eq!(partitioning.assigned_count(), graph.vertex_count());
        prop_assert_eq!(loom.loom_stats().total_assigned(), graph.vertex_count());
    }

    /// TPSTry++ invariants hold for arbitrary mined workloads: parent/child
    /// symmetry and support monotonicity.
    #[test]
    fn tpstry_invariants_hold_for_random_workloads(
        label_seqs in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 2..5),
            1..5,
        ),
    ) {
        let queries: Vec<PatternQuery> = label_seqs
            .iter()
            .enumerate()
            .map(|(i, labels)| {
                let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
                PatternQuery::path(QueryId::new(i as u32), &labels).expect("valid path query")
            })
            .collect();
        let workload = Workload::uniform(queries).expect("non-empty");
        let tpstry = MotifMiner::default().mine(&workload).expect("mines");
        prop_assert!(tpstry.check_invariants().is_ok());
        // Every p-value is a probability.
        for node in tpstry.nodes() {
            let p = tpstry.p_value(node.id());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    /// Partition quality metrics are internally consistent.
    #[test]
    fn quality_metrics_are_consistent(graph in small_graph_strategy(), seed in 0u64..1000, k in 2u32..5) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let mut ldg = LdgPartitioner::new(LdgConfig::new(k, graph.vertex_count())).expect("valid");
        let partitioning = partition_stream(&mut ldg, &stream).expect("ok");
        let report = partitioning.quality(&graph);
        prop_assert_eq!(report.total_edges, graph.edge_count());
        prop_assert!(report.cut_edges <= report.total_edges);
        prop_assert!((0.0..=1.0).contains(&report.cut_ratio));
        prop_assert!(report.imbalance >= 1.0 - 1e-9);
        // Communication volume is at most twice the cut edge count
        // (each cut edge contributes at most one remote partition per side).
        prop_assert!(report.communication_volume <= 2 * report.cut_edges);
    }
}

// ───────────────── mutation-stream interleaving parity ─────────────────

/// One raw mutation op before interpretation: `(kind, a, b, label)`. The
/// interpreter maps it onto whatever is valid for the current shadow graph
/// (indices are taken modulo the live population), so every generated
/// sequence realises into a legal mutation stream.
type RawOp = (u8, usize, usize, u32);

/// Interprets [`RawOp`]s into a [`StreamElement`] sequence while maintaining
/// the reference graph the stream must converge to. Removed vertices go to a
/// graveyard so a later op can re-add the *same* id (the remove-then-readd
/// path the distinct counters and tombstone machinery must survive).
struct MutationScript {
    graph: LabelledGraph,
    alive: Vec<VertexId>,
    graveyard: Vec<(VertexId, Label)>,
    next_id: u64,
    elements: Vec<StreamElement>,
}

impl MutationScript {
    fn new() -> Self {
        Self {
            graph: LabelledGraph::new(),
            alive: Vec::new(),
            graveyard: Vec::new(),
            next_id: 0,
            elements: Vec::new(),
        }
    }

    /// Apply one raw op. `destructive_only` restricts the op to the
    /// remove/relabel kinds (the dissolve phase of a churn workload).
    fn apply(&mut self, op: RawOp, destructive_only: bool) {
        let (kind, a, b, label) = op;
        let kind = if destructive_only {
            2 + kind % 3
        } else {
            kind % 6
        };
        match kind {
            0 => {
                // Add a fresh vertex.
                let id = VertexId::new(self.next_id);
                self.next_id += 1;
                let lbl = Label::new(label % 4);
                self.graph.insert_vertex(id, lbl);
                self.alive.push(id);
                self.elements
                    .push(StreamElement::AddVertex { id, label: lbl });
            }
            1 => {
                // Add an edge between two distinct live vertices.
                if self.alive.len() >= 2 {
                    let u = self.alive[a % self.alive.len()];
                    let v = self.alive[b % self.alive.len()];
                    if u != v {
                        let _ = self.graph.add_edge_idempotent(u, v);
                        self.elements.push(StreamElement::AddEdge {
                            source: u,
                            target: v,
                        });
                    }
                }
            }
            2 => {
                // Remove a live vertex (implicitly drops incident edges).
                if !self.alive.is_empty() {
                    let v = self.alive.swap_remove(a % self.alive.len());
                    let lbl = self.graph.label(v).expect("live vertex is labelled");
                    self.graph.remove_vertex(v);
                    self.graveyard.push((v, lbl));
                    self.elements.push(StreamElement::RemoveVertex { id: v });
                }
            }
            3 => {
                // Remove an existing edge.
                let edges = self.graph.edges_sorted();
                if !edges.is_empty() {
                    let e = edges[a % edges.len()];
                    self.graph.remove_edge(e.lo, e.hi);
                    self.elements.push(StreamElement::RemoveEdge {
                        source: e.lo,
                        target: e.hi,
                    });
                }
            }
            4 => {
                // Relabel a live vertex.
                if !self.alive.is_empty() {
                    let v = self.alive[a % self.alive.len()];
                    let lbl = Label::new(label % 4);
                    let _ = self.graph.set_label(v, lbl);
                    self.elements
                        .push(StreamElement::Relabel { id: v, label: lbl });
                }
            }
            _ => {
                // Re-add a previously removed vertex under its old id.
                if !self.graveyard.is_empty() {
                    let (v, lbl) = self.graveyard.swap_remove(a % self.graveyard.len());
                    self.graph.insert_vertex(v, lbl);
                    self.alive.push(v);
                    self.elements
                        .push(StreamElement::AddVertex { id: v, label: lbl });
                }
            }
        }
    }

    /// Drain the elements realised so far (the phase boundary).
    fn take_elements(&mut self) -> Vec<StreamElement> {
        std::mem::take(&mut self.elements)
    }
}

/// Monotonic counter giving each WAL-leg proptest case a private temp dir.
static WAL_CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The fixed two-query workload for the parity checks (labels inside the
/// interpreter's 0..4 alphabet, so relabels move matches in and out).
fn parity_workload() -> Workload {
    Workload::uniform(vec![
        PatternQuery::path(
            QueryId::new(0),
            &[Label::new(0), Label::new(1), Label::new(2)],
        )
        .expect("valid abc query"),
        PatternQuery::path(QueryId::new(1), &[Label::new(2), Label::new(1)]).expect("valid query"),
    ])
    .expect("valid parity workload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid interleaving of adds, removes, relabels and re-adds,
    /// streamed through each partitioner, yields a partitioning of exactly
    /// the surviving vertices — and the workload's match counts are
    /// identical whether the final graph is (1) queried sequentially from a
    /// from-scratch build, (2) served from a from-scratch sharded store,
    /// (3) served from a pre-dissolve store that reached the final state
    /// through tombstoning, or (4) rebuilt from a WAL round-trip of the
    /// full mutation history.
    #[test]
    fn mutation_interleavings_preserve_match_parity(
        build_ops in proptest::collection::vec((0u8..6, 0usize..64, 0usize..64, 0u32..4), 6..40),
        destroy_ops in proptest::collection::vec((0u8..3, 0usize..64, 0usize..64, 0u32..4), 1..16),
        seed in 0u64..1000,
    ) {
        let mut script = MutationScript::new();
        for op in build_ops {
            script.apply(op, false);
        }
        let build = script.take_elements();
        let pre_destroy = script.graph.clone();
        for op in destroy_ops {
            script.apply(op, true);
        }
        let destroy = script.take_elements();
        let final_graph = script.graph;

        // The stream is faithful: materialising the full history rebuilds
        // the shadow graph exactly (vertices, edges, labels).
        let mut all = build.clone();
        all.extend(destroy.iter().cloned());
        let replayed = GraphStream::from_elements(all.clone()).materialise();
        prop_assert_eq!(replayed.vertices_sorted(), final_graph.vertices_sorted());
        prop_assert_eq!(replayed.edges_sorted(), final_graph.edges_sorted());
        for v in final_graph.vertices_sorted() {
            prop_assert_eq!(replayed.label(v), final_graph.label(v));
        }

        let workload = parity_workload();
        let n = final_graph.vertex_count();
        // Capacity must cover the high-water mark of live vertices, which is
        // bounded by the total number of AddVertex elements.
        let adds = all
            .iter()
            .filter(|e| matches!(e, StreamElement::AddVertex { .. }))
            .count()
            .max(1);
        let edges = pre_destroy.edge_count().max(1);
        let tpstry = MotifMiner::default().mine(&workload).expect("mines");
        let executor = QueryExecutor::new(LatencyModel::default());
        let engine = ServeEngine::new(ServeConfig::new(2));
        let samples = 8usize;

        let registry = loom_core::workload_registry(&tpstry);
        let specs = [
            PartitionerSpec::Hash(HashConfig::new(2, adds)),
            PartitionerSpec::Ldg(LdgConfig::new(2, adds)),
            PartitionerSpec::Fennel(FennelConfig::new(2, adds, edges)),
            PartitionerSpec::Loom(LoomConfig::new(2, adds).with_window_size(4)),
        ];
        let mut reference: Option<usize> = None;
        for spec in &specs {
            // Leg 1 (sequential, from scratch): stream the full history.
            let mut partitioner = registry.build(spec).expect("builds");
            partitioner.ingest_batch(&build).expect("build batch ingests");
            partitioner.ingest_batch(&destroy).expect("destroy batch ingests");
            let partitioning = partitioner.finish().expect("finishes");
            prop_assert_eq!(partitioning.assigned_count(), n);
            for v in final_graph.vertices_sorted() {
                prop_assert!(partitioning.partition_of(v).is_some());
            }
            let seq = executor
                .execute_workload(
                    &PartitionedStore::new(final_graph.clone(), partitioning.clone()),
                    &workload,
                    samples,
                    seed,
                )
                .matches_found;
            // Every partitioner sees the same matches on the same graph.
            if let Some(reference) = reference {
                prop_assert_eq!(seq, reference);
            }
            reference = Some(seq);

            // Leg 2 (sharded, from scratch): same partitioning, frozen into
            // the concurrent store.
            let sharded = engine
                .serve_batch(
                    &std::sync::Arc::new(ShardedStore::from_parts(&final_graph, &partitioning)),
                    &workload,
                    samples,
                    seed,
                )
                .aggregate;
            prop_assert_eq!(sharded.matches_found, seq);

            // Leg 3 (tombstoned): build the pre-dissolve store from scratch,
            // then apply the destroy stream as tombstones — matches must be
            // those of the final graph without any rebuild.
            let mut pre_partitioner = registry.build(spec).expect("builds");
            pre_partitioner.ingest_batch(&build).expect("build batch ingests");
            let pre_partitioning = pre_partitioner.finish().expect("finishes");
            let tombstoned = ShardedStore::from_parts(&pre_destroy, &pre_partitioning)
                .apply_mutations(&destroy)
                .store;
            let tomb = engine
                .serve_batch(&std::sync::Arc::new(tombstoned), &workload, samples, seed)
                .aggregate;
            prop_assert_eq!(tomb.matches_found, seq);
        }

        // Leg 4 (recovered from WAL): the full mutation history round-trips
        // bit-for-bit and its replay equals the final graph.
        let case = WAL_CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "loom-prop-mutations-{}-{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).expect("temp root");
        {
            let mut wal = loom::loom_store::Wal::create(&root.join(loom::loom_store::WAL_FILE))
                .expect("wal creates");
            let mut expected = Vec::new();
            for batch in [&build, &destroy] {
                if !batch.is_empty() {
                    wal.append(batch).expect("wal appends");
                    expected.push(batch.clone());
                }
            }
            let recovered = loom::loom_store::recover(&root).expect("recovers");
            prop_assert_eq!(&recovered.batches, &expected);
            let rebuilt =
                GraphStream::from_elements(recovered.batches.concat()).materialise();
            prop_assert_eq!(rebuilt.vertices_sorted(), final_graph.vertices_sorted());
            prop_assert_eq!(rebuilt.edges_sorted(), final_graph.edges_sorted());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
