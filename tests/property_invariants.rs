//! Property-based tests over the core invariants of the LOOM stack.
//!
//! These use `proptest` to generate random graphs, workloads and streams and
//! check the invariants the rest of the system silently relies on:
//! signature algebra, canonical-code stability, stream faithfulness,
//! partitioner completeness and balance, and TPSTry++ support monotonicity.

use loom::prelude::*;
use loom_graph::VertexId;
use loom_motif::canonical::canonical_code;
use loom_motif::isomorphism::are_isomorphic;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Strategy: a small random connected labelled graph described by a label
/// sequence (path backbone) plus extra random edges.
fn small_graph_strategy() -> impl Strategy<Value = LabelledGraph> {
    (
        proptest::collection::vec(0u32..4, 2..8),
        proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    )
        .prop_map(|(labels, extra_edges)| {
            let mut g = LabelledGraph::new();
            let vertices: Vec<VertexId> = labels
                .iter()
                .map(|&l| g.add_vertex(Label::new(l)))
                .collect();
            for w in vertices.windows(2) {
                let _ = g.add_edge_idempotent(w[0], w[1]);
            }
            for (a, b) in extra_edges {
                if a < vertices.len() && b < vertices.len() && a != b {
                    let _ = g.add_edge_idempotent(vertices[a], vertices[b]);
                }
            }
            g
        })
}

/// Relabel vertex ids of a graph with an arbitrary offset + shuffle, keeping
/// the structure identical.
fn shuffle_ids(graph: &LabelledGraph, seed: u64) -> LabelledGraph {
    let vertices = graph.vertices_sorted();
    let mut new_ids: Vec<u64> = (0..vertices.len() as u64).map(|i| 1_000 + i * 7).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    new_ids.shuffle(&mut rng);
    let mapping: std::collections::HashMap<VertexId, VertexId> = vertices
        .iter()
        .zip(new_ids.iter())
        .map(|(&old, &new)| (old, VertexId::new(new)))
        .collect();
    let mut out = LabelledGraph::new();
    for &v in &vertices {
        out.insert_vertex(mapping[&v], graph.label(v).expect("labelled"));
    }
    for e in graph.edges_sorted() {
        out.add_edge(mapping[&e.lo], mapping[&e.hi])
            .expect("valid edge");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical code is invariant under vertex-id relabelling, and equal
    /// codes imply isomorphism for these small graphs.
    #[test]
    fn canonical_code_is_id_invariant(graph in small_graph_strategy(), seed in 0u64..1000) {
        let shuffled = shuffle_ids(&graph, seed);
        prop_assert_eq!(canonical_code(&graph), canonical_code(&shuffled));
        prop_assert!(are_isomorphic(&graph, &shuffled));
    }

    /// A sub-graph's signature always divides its super-graph's signature.
    #[test]
    fn signature_divisibility_respects_subgraphs(graph in small_graph_strategy()) {
        let table = PrimeTable::new(4);
        let full = table.signature_of(&graph).expect("alphabet fits");
        // Drop the highest-id vertex to build a strict sub-graph.
        let vertices = graph.vertices_sorted();
        let subset: Vec<VertexId> = vertices[..vertices.len() - 1].to_vec();
        let sub = induced_subgraph(&graph, subset);
        let sub_sig = table.signature_of(&sub).expect("alphabet fits");
        prop_assert!(sub_sig.divides(&full));
        // Divisibility is reflexive and antisymmetric on factor counts.
        prop_assert!(full.divides(&full));
        if sub_sig.factor_count() < full.factor_count() {
            prop_assert!(!full.divides(&sub_sig));
        }
    }

    /// Streams reconstruct their source graph under any random ordering, and
    /// edges never precede their endpoints.
    #[test]
    fn streams_are_faithful(graph in small_graph_strategy(), seed in 0u64..1000) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let rebuilt = stream.materialise();
        prop_assert_eq!(rebuilt.vertex_count(), graph.vertex_count());
        prop_assert_eq!(rebuilt.edges_sorted(), graph.edges_sorted());
        let mut seen = std::collections::HashSet::new();
        for element in &stream {
            match *element {
                StreamElement::AddVertex { id, .. } => { seen.insert(id); }
                StreamElement::AddEdge { source, target } => {
                    prop_assert!(seen.contains(&source) && seen.contains(&target));
                }
            }
        }
    }

    /// Every streaming partitioner assigns every vertex exactly once, to a
    /// valid partition, and LDG stays within its capacity.
    #[test]
    fn streaming_partitioners_are_complete(
        graph in small_graph_strategy(),
        seed in 0u64..1000,
        k in 2u32..5,
    ) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let n = graph.vertex_count();

        let mut ldg = LdgPartitioner::new(LdgConfig::new(k, n)).expect("valid");
        let ldg_part = partition_stream(&mut ldg, &stream).expect("ldg ok");
        prop_assert_eq!(ldg_part.assigned_count(), n);
        for p in ldg_part.partitions() {
            prop_assert!(ldg_part.size(p) <= ldg_part.capacity());
        }

        let mut hash = HashPartitioner::new(k, n.max(1)).expect("valid");
        let hash_part = partition_stream(&mut hash, &stream).expect("hash ok");
        prop_assert_eq!(hash_part.assigned_count(), n);

        let mut fennel = FennelPartitioner::new(FennelConfig::new(k, n, graph.edge_count()))
            .expect("valid");
        let fennel_part = partition_stream(&mut fennel, &stream).expect("fennel ok");
        prop_assert_eq!(fennel_part.assigned_count(), n);
        for v in graph.vertices_sorted() {
            prop_assert!(ldg_part.partition_of(v).expect("assigned").0 < k);
            prop_assert!(fennel_part.partition_of(v).expect("assigned").0 < k);
        }
    }

    /// LOOM assigns every vertex exactly once no matter the window size or
    /// motif threshold, and its cluster bookkeeping never loses a vertex.
    #[test]
    fn loom_is_complete_for_any_window(
        graph in small_graph_strategy(),
        window in 1usize..16,
        threshold in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let q = PatternQuery::path(QueryId::new(0), &[Label::new(0), Label::new(1), Label::new(2)])
            .expect("valid query");
        let workload = Workload::uniform(vec![q]).expect("valid workload");
        let tpstry = MotifMiner::default().mine(&workload).expect("mines");
        let config = LoomConfig::new(3, graph.vertex_count())
            .with_window_size(window)
            .with_motif_threshold(threshold);
        let mut loom = LoomPartitioner::new(config, &tpstry).expect("valid");
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let partitioning = partition_stream(&mut loom, &stream).expect("loom ok");
        prop_assert_eq!(partitioning.assigned_count(), graph.vertex_count());
        prop_assert_eq!(loom.loom_stats().total_assigned(), graph.vertex_count());
    }

    /// TPSTry++ invariants hold for arbitrary mined workloads: parent/child
    /// symmetry and support monotonicity.
    #[test]
    fn tpstry_invariants_hold_for_random_workloads(
        label_seqs in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 2..5),
            1..5,
        ),
    ) {
        let queries: Vec<PatternQuery> = label_seqs
            .iter()
            .enumerate()
            .map(|(i, labels)| {
                let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
                PatternQuery::path(QueryId::new(i as u32), &labels).expect("valid path query")
            })
            .collect();
        let workload = Workload::uniform(queries).expect("non-empty");
        let tpstry = MotifMiner::default().mine(&workload).expect("mines");
        prop_assert!(tpstry.check_invariants().is_ok());
        // Every p-value is a probability.
        for node in tpstry.nodes() {
            let p = tpstry.p_value(node.id());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    /// Partition quality metrics are internally consistent.
    #[test]
    fn quality_metrics_are_consistent(graph in small_graph_strategy(), seed in 0u64..1000, k in 2u32..5) {
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed });
        let mut ldg = LdgPartitioner::new(LdgConfig::new(k, graph.vertex_count())).expect("valid");
        let partitioning = partition_stream(&mut ldg, &stream).expect("ok");
        let report = partitioning.quality(&graph);
        prop_assert_eq!(report.total_edges, graph.edge_count());
        prop_assert!(report.cut_edges <= report.total_edges);
        prop_assert!((0.0..=1.0).contains(&report.cut_ratio));
        prop_assert!(report.imbalance >= 1.0 - 1e-9);
        // Communication volume is at most twice the cut edge count
        // (each cut edge contributes at most one remote partition per side).
        prop_assert!(report.communication_volume <= 2 * report.cut_edges);
    }
}
