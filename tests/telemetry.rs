//! Integration suite for the `loom-obs` telemetry subsystem, end to end
//! through the `Session` façade.
//!
//! Three properties matter:
//!
//! * **parity** — telemetry is strictly additive: a session built without
//!   it produces bit-identical `ServeReport`s run after run, and an
//!   observed session's modelled aggregates equal the unobserved ones;
//! * **coverage** — one observed pipeline (ingest → checkpoint → serve →
//!   adapt) populates the stage histograms, shard counters and flight
//!   events each layer is responsible for, and the Prometheus export of
//!   the result parses;
//! * **diagnosis** — a request rejected at admission (queue full past its
//!   deadline) automatically latches a flight dump carrying that request's
//!   admission, queue wait, and rejection, pinned to the serving epoch.

use loom::prelude::*;
use loom_obs::FlightDump;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn l(x: u32) -> Label {
    Label::new(x)
}

/// A 30-vertex abc-path graph plus a 2-query workload — small enough to be
/// fast, structured enough that every query finds matches.
fn fixture() -> (LabelledGraph, Workload) {
    let graph = loom_graph::generators::regular::path_graph(30, &[l(0), l(1), l(2)]);
    let workload = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
            3.0,
        ),
        (
            PatternQuery::path(QueryId::new(1), &[l(2), l(1)]).unwrap(),
            1.0,
        ),
    ])
    .unwrap();
    (graph, workload)
}

fn session(graph: &LabelledGraph, workload: &Workload) -> SessionBuilder {
    let spec = PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
    Session::builder(spec).workload(workload.clone())
}

fn serve_through(builder: SessionBuilder, graph: &LabelledGraph) -> Serving {
    let mut session = builder.build().unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(graph, &StreamOrder::Bfs))
        .unwrap();
    session.serve(graph.clone()).unwrap()
}

/// Zero the report fields that measure *this process's* wall clock
/// (`wall_clock_us`, queue waits, queue high-water) — those are
/// scheduler-dependent with or without telemetry. Everything left is
/// modelled and must reproduce exactly.
fn modelled(report: &ServeReport) -> ServeReport {
    let mut r = report.clone();
    r.wall_clock_us = 0.0;
    r.wall_clock_qps = 0.0;
    for shard in &mut r.shards {
        shard.queue_wait_p99_us = 0.0;
        shard.max_queue_depth = 0;
    }
    r
}

#[test]
fn unobserved_sessions_stay_bit_identical() {
    let (graph, workload) = fixture();
    let request = QueryRequest::workload(60).with_seed(11);
    let (report_a, response_a) = serve_through(session(&graph, &workload), &graph)
        .sharded(2)
        .serve_request(request);
    let (report_b, response_b) = serve_through(session(&graph, &workload), &graph)
        .sharded(2)
        .serve_request(request);
    // The whole modelled report — per-shard metrics, quantiles, epochs —
    // not just the aggregate: the no-telemetry path must stay exactly
    // reproducible run after run.
    assert_eq!(modelled(&report_a), modelled(&report_b));
    assert_eq!(response_a.metrics, response_b.metrics);
    assert!(report_a.shards.iter().any(|s| s.epoch_seq.is_some()));
}

#[test]
fn observed_sessions_match_unobserved_aggregates() {
    let (graph, workload) = fixture();
    let request = QueryRequest::workload(60).with_seed(11);
    let (plain, _) = serve_through(session(&graph, &workload), &graph)
        .sharded(2)
        .serve_request(request);

    let telemetry = Telemetry::new();
    let observed_serving = serve_through(
        session(&graph, &workload).telemetry(Arc::clone(&telemetry)),
        &graph,
    );
    let (observed, _) = observed_serving.sharded(2).serve_request(request);

    // The modelled execution is untouched by instrumentation.
    assert_eq!(observed.aggregate, plain.aggregate);
    assert_eq!(observed.queries, plain.queries);
    assert_eq!(observed.epochs_observed, plain.epochs_observed);
    for (o, p) in observed.shards.iter().zip(&plain.shards) {
        assert_eq!(o.queries, p.queries);
        assert_eq!(o.execution, p.execution);
        assert_eq!(o.rejected, p.rejected);
        assert_eq!(o.epoch_seq, p.epoch_seq);
    }
    // Report quantiles are rebuilt from the shared histograms: conservative
    // (a bucket upper bound) within the layout's 1/32 relative error.
    assert!(observed.p99_latency_us >= plain.p99_latency_us);
    assert!(observed.p99_latency_us <= plain.p99_latency_us.mul_add(1.0 + 1.0 / 32.0, 1.0));

    // Both the ingest spans and the serve histograms were populated.
    let snap = telemetry.snapshot();
    let count = |name: &str| {
        snap.registry
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum::<u64>()
    };
    assert!(count(stage::INGEST_PARTITION) > 0, "ingest spans recorded");
    assert_eq!(count(stage::SERVE_EXECUTE), 60);
    assert_eq!(count("serve.latency"), 60);
    // The export is valid Prometheus text exposition.
    let series = loom_obs::validate_prometheus(&snap.prometheus()).expect("export parses");
    assert!(series.iter().any(|s| s.starts_with("loom_serve_execute")));
}

#[test]
fn durable_observed_pipeline_records_store_stages_and_checkpoint_seals() {
    let (graph, workload) = fixture();
    let root = std::env::temp_dir().join(format!("loom-obs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let telemetry = Telemetry::new();
    let mut session = session(&graph, &workload)
        .telemetry(Arc::clone(&telemetry))
        .with_durability(&root)
        .build()
        .unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    let epoch = session.checkpoint().unwrap();
    session.sync_durability(Duration::from_secs(30)).unwrap();

    let snap = telemetry.snapshot();
    let count = |name: &str| {
        snap.registry
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum::<u64>()
    };
    // Every WAL-appended batch charged both the session-level span and the
    // store-level fsync span.
    let wal_records = session.wal_records().unwrap();
    assert_eq!(count(stage::INGEST_WAL_APPEND), wal_records);
    assert_eq!(count(stage::STORE_FSYNC), wal_records);
    assert_eq!(count(stage::STORE_CHECKPOINT_WRITE), 1);
    // The sealed checkpoint left a flight event carrying its epoch.
    let dump = telemetry.flight().dump("test probe");
    assert!(dump.events.iter().any(|e| matches!(
        e.kind,
        FlightKind::CheckpointSealed { epoch: seq, wal_records: w }
            if seq == epoch && w == wal_records
    )));
    drop(session);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mutating_batches_charge_apply_delete_and_compaction_observes() {
    let (graph, workload) = fixture();

    // Durable session: only batches carrying deletes/relabels charge the
    // `ingest.apply_delete` span (its count is the number of mutating
    // batches, not elements).
    let root = std::env::temp_dir().join(format!("loom-obs-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let telemetry = Telemetry::new();
    let mut durable = session(&graph, &workload)
        .telemetry(Arc::clone(&telemetry))
        .with_durability(&root)
        .build()
        .unwrap();
    durable
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    let count = |telemetry: &Telemetry, name: &str| {
        telemetry
            .snapshot()
            .registry
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum::<u64>()
    };
    assert_eq!(
        count(&telemetry, stage::INGEST_APPLY_DELETE),
        0,
        "insert-only ingest stays off the delete span"
    );
    let victims = graph.vertices_sorted();
    durable
        .ingest_batch(&[StreamElement::RemoveVertex { id: victims[0] }])
        .unwrap();
    durable
        .ingest_batch(&[
            StreamElement::AddVertex {
                id: VertexId::new(900_000),
                label: l(0),
            },
            StreamElement::Relabel {
                id: victims[1],
                label: l(2),
            },
        ])
        .unwrap();
    assert_eq!(count(&telemetry, stage::INGEST_APPLY_DELETE), 2);
    drop(durable);
    let _ = std::fs::remove_dir_all(&root);

    // Adapt layer: a mutation tombstones the published store (the gauge
    // rises), compaction reclaims it (gauge back to zero, `Compacted` in
    // the flight recorder, `serve.compaction` charged).
    let telemetry = Telemetry::new();
    let serving = serve_through(
        session(&graph, &workload).telemetry(Arc::clone(&telemetry)),
        &graph,
    );
    let mut adaptive = serving.adaptive(2, AdaptConfig::default()).unwrap();
    let tombstone_level = |telemetry: &Telemetry| {
        telemetry
            .snapshot()
            .registry
            .gauges
            .iter()
            .filter(|(k, _)| k.name == "store.tombstone_fraction")
            .map(|(_, v)| *v)
            .sum::<i64>()
    };
    adaptive.apply_mutations(&[StreamElement::RemoveVertex { id: victims[3] }]);
    assert!(
        tombstone_level(&telemetry) > 0,
        "a tombstoned shard must raise its gauge"
    );
    let outcome = adaptive.compact_now(0.0);
    assert_eq!(outcome.purged_vertices, 1);
    assert_eq!(tombstone_level(&telemetry), 0);
    assert!(count(&telemetry, stage::SERVE_COMPACTION) >= 1);
    let dump = telemetry.flight().dump("test probe");
    assert!(dump.events.iter().any(|e| matches!(
        e.kind,
        FlightKind::Compacted { purged: 1, epoch, .. } if epoch == outcome.epoch
    )));
}

#[test]
fn adaptation_charges_plan_and_migrate_spans_and_flight_events() {
    let (graph, workload) = fixture();
    let telemetry = Telemetry::new();
    let serving = serve_through(
        session(&graph, &workload).telemetry(Arc::clone(&telemetry)),
        &graph,
    );
    let mut adaptive = serving.adaptive(2, AdaptConfig::default()).unwrap();
    // Drifted traffic: everything hits query 1. The adaptation pass plans,
    // migrates, and publishes — all observed.
    let drifted = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
            1.0,
        ),
        (
            PatternQuery::path(QueryId::new(1), &[l(2), l(1)]).unwrap(),
            50.0,
        ),
    ])
    .unwrap();
    let mut adapted = None;
    for round in 0..12 {
        let (_, outcome) = adaptive.serve(&drifted, 100, 20 + round).unwrap();
        if outcome.is_some() {
            adapted = outcome;
            break;
        }
    }
    let outcome = adapted.expect("sustained drift triggers an adaptation");

    let snap = telemetry.snapshot();
    let count = |name: &str| {
        snap.registry
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum::<u64>()
    };
    assert!(count(stage::ADAPT_PLAN) >= 1);
    let dump = telemetry.flight().dump("test probe");
    if outcome.moved > 0 {
        assert!(count(stage::ADAPT_MIGRATE) >= 1);
        assert!(dump.events.iter().any(|e| matches!(
            e.kind,
            FlightKind::Migrated { moved, epoch } if moved == outcome.moved as u64 && epoch == outcome.epoch
        )));
        assert!(dump.events.iter().any(
            |e| matches!(e.kind, FlightKind::EpochPublished { epoch } if epoch == outcome.epoch)
        ));
    }
}

/// The acceptance scenario: drive a tiny queue past a request deadline so
/// admission rejects, then diagnose the rejection purely from the flight
/// dump the engine latched automatically.
#[test]
fn rejected_admission_latches_a_flight_dump_with_the_request_timeline() {
    let (graph, workload) = fixture();
    let serving = serve_through(session(&graph, &workload), &graph);
    let store = Arc::new(ShardedStore::from_store(serving.store()));
    let expected_epoch = store.epoch();

    // Capacity-1 queues and an already-expired deadline: any admission push
    // that finds its worker still busy rejects immediately. A couple of
    // hundred samples through one worker makes that collision essentially
    // certain; retry a few seeds to make the test timing-proof.
    let mut latched: Option<(FlightDump, Vec<ShardServeMetrics>)> = None;
    for seed in 0..25 {
        let telemetry = Telemetry::new();
        let engine = ServeEngine::new(
            ServeConfig::new(1)
                .with_queue_capacity(1)
                .with_batch_size(1),
        )
        .with_telemetry(Arc::clone(&telemetry));
        let request = QueryRequest::workload(200)
            .with_seed(seed)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        let (report, response) = engine.run_request(&store, &workload, request);
        assert_eq!(report.queries, 200);
        assert!(response.metrics.deadline_exceeded);
        if report.shards.iter().any(|s| s.rejected > 0) {
            let dump = telemetry
                .flight()
                .last_dump()
                .expect("rejection must latch a dump automatically");
            latched = Some((dump, report.shards));
            break;
        }
    }
    let (dump, shards) = latched.expect("a capacity-1 queue must reject at least once");

    // The dump carries the rejected request's full timeline: admission,
    // measured queue wait, rejection — all pinned to the serving epoch.
    let rejected_request = dump
        .events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            FlightKind::Rejected { request, .. } => Some(request),
            _ => None,
        })
        .expect("dump contains the rejection");
    let timeline = dump.events_for_request(rejected_request);
    assert!(timeline.iter().any(|e| matches!(
        e.kind,
        FlightKind::Admitted { epoch, .. } if epoch == expected_epoch
    )));
    assert!(timeline
        .iter()
        .any(|e| matches!(e.kind, FlightKind::QueueWait { .. })));
    assert!(timeline.iter().any(|e| matches!(
        e.kind,
        FlightKind::Rejected { epoch, .. } if epoch == expected_epoch
    )));
    // Timeline order: admitted before rejected.
    let admitted_at = timeline
        .iter()
        .position(|e| matches!(e.kind, FlightKind::Admitted { .. }))
        .unwrap();
    let rejected_at = timeline
        .iter()
        .position(|e| matches!(e.kind, FlightKind::Rejected { .. }))
        .unwrap();
    assert!(admitted_at < rejected_at);
    // And the report agrees: the shard stayed pinned at the store's epoch.
    assert_eq!(shards[0].epoch_seq, Some(expected_epoch));
    assert!(shards[0].rejected > 0);
    // The latch came from one of the two automatic triggers (whichever
    // fired last), and the dump renders human-readably for logs.
    assert!(matches!(
        dump.reason,
        "admission rejected" | "deadline exceeded"
    ));
    let text = dump.to_string();
    assert!(text.contains(&format!("rejected request={rejected_request}")));
}
