//! Integration suite for the `loom-load` open-loop capacity harness.
//!
//! The properties that make the harness trustworthy:
//!
//! * **determinism** — arrival schedules are a pure function of
//!   `(process, rate, duration, seed)`, regenerable before, during, or
//!   after a run;
//! * **open-loop injection** — arrival timestamps follow the seeded
//!   schedule, not the engine: a saturated, rejecting engine sees exactly
//!   the same planned arrivals as an idle one;
//! * **error-budget conservation** — every scheduled arrival is accounted
//!   for (admitted, rejected, or shed), saturated or not;
//! * **parity under load** — service-time emulation changes wall-clock
//!   occupancy only; the sharded engine's answers stay identical to the
//!   sequential executor's.

use loom::prelude::*;
use loom_graph::generators::{barabasi_albert, GeneratorConfig};
use loom_partition::hash::HashConfig;
use loom_partition::spec::LoomConfig;
use std::sync::Arc;
use std::time::Duration;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn social_graph(vertices: usize, seed: u64) -> LabelledGraph {
    barabasi_albert(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        3,
    )
    .expect("valid BA parameters")
}

fn motif_workload() -> Workload {
    let q_path = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
    let q_edge = PatternQuery::path(QueryId::new(1), &[l(0), l(1)]).unwrap();
    Workload::new(vec![(q_path, 3.0), (q_edge, 1.0)]).unwrap()
}

/// Stream a graph through a partitioner and return the partitioning.
fn partitioned(graph: &LabelledGraph, spec: PartitionerSpec, workload: &Workload) -> Partitioning {
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .build()
        .unwrap();
    let stream = GraphStream::from_graph(graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream).unwrap();
    session.into_partitioning().unwrap()
}

fn fixture() -> (Arc<ShardedStore>, Workload) {
    let graph = social_graph(300, 11);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    (
        Arc::new(ShardedStore::from_parts(&graph, &partitioning)),
        workload,
    )
}

fn rooted() -> QueryMode {
    QueryMode::Rooted { seed_count: 3 }
}

#[test]
fn arrival_schedules_are_pure_functions_of_the_seed() {
    let step = Duration::from_millis(250);
    for process in [ArrivalProcess::Poisson, ArrivalProcess::Constant] {
        let a = process.offsets_us(500.0, step, 7);
        let b = process.offsets_us(500.0, step, 7);
        assert_eq!(a, b, "{}: same seed must reproduce", process.name());
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets ascend");
        assert!(a.iter().all(|&t| t < 250_000), "offsets stay in the step");
    }
    // Poisson gaps move with the seed; constant gaps ignore it.
    let poisson = ArrivalProcess::Poisson;
    assert_ne!(
        poisson.offsets_us(500.0, step, 7),
        poisson.offsets_us(500.0, step, 8)
    );
    let constant = ArrivalProcess::Constant;
    assert_eq!(
        constant.offsets_us(500.0, step, 7),
        constant.offsets_us(500.0, step, 8)
    );
    // The whole ramp's planned schedule regenerates from the config alone.
    let ramp = RampSchedule::new(200.0, 200.0, Duration::from_millis(100), 600.0);
    let config = LoadConfig::new(ramp).with_seed(17);
    assert_eq!(config.planned_offsets_us(), config.planned_offsets_us());
}

#[test]
fn knee_detection_flags_synthetic_saturation_curves() {
    let curve = |offered: f64, achieved: f64, p99_us: u64| StepMetrics {
        offered_rps: offered,
        achieved_rps: achieved,
        p99_us,
        ..StepMetrics::default()
    };
    let steps = vec![
        curve(100.0, 99.0, 1_000),
        curve(200.0, 197.0, 1_400),
        curve(300.0, 240.0, 40_000), // goodput flattens here
        curve(400.0, 238.0, 90_000),
    ];
    let knee = SaturationDetector::default().detect(&steps);
    assert!(knee.found());
    assert_eq!(knee.saturated_step, Some(2));
    assert_eq!(knee.knee_rps, 200.0);
    assert_eq!(knee.reason, KneeReason::AchievedFlattened);
    // An SLO turns a keeping-up-but-slow step into the saturation point.
    let slow = vec![curve(100.0, 100.0, 500), curve(200.0, 200.0, 30_000)];
    let knee = SaturationDetector::default()
        .with_slo_p99_us(25_000)
        .detect(&slow);
    assert_eq!(knee.reason, KneeReason::SloExceeded);
    assert_eq!(knee.knee_rps, 100.0);
    assert!(!SaturationDetector::default().detect(&slow).found());
}

#[test]
fn arrivals_follow_the_schedule_even_when_the_engine_saturates() {
    let (store, workload) = fixture();
    let config = LoadConfig::new(RampSchedule::new(
        300.0,
        300.0,
        Duration::from_millis(80),
        600.0,
    ))
    .with_seed(17)
    .with_recorded_arrivals(true);

    let idle = ServeEngine::new(ServeConfig::new(2).with_mode(rooted()));
    let idle_run = run_capacity(&idle, &store, &workload, &config);

    // One worker held ~8ms per query behind a 2-deep queue: far under the
    // offered 300 rps, so this engine rejects hard.
    let saturated = ServeEngine::new(
        ServeConfig::new(1)
            .with_mode(rooted())
            .with_queue_capacity(2)
            .with_service_hold(300.0),
    );
    let sat_run = run_capacity(&saturated, &store, &workload, &config);

    // The open-loop proof: injection timing is owned by the seeded
    // schedule, so the saturated (rejecting) run planned *exactly* the same
    // arrival instants as the idle run — and both match a regeneration from
    // the config alone.
    let planned = config.planned_offsets_us();
    assert_eq!(idle_run.planned_offsets_us.as_ref(), Some(&planned));
    assert_eq!(sat_run.planned_offsets_us.as_ref(), Some(&planned));

    assert_eq!(idle_run.report.error_budget.dropped(), 0);
    let sat_dropped: usize = sat_run.steps.iter().map(|s| s.rejected + s.shed).sum();
    assert!(sat_dropped > 0, "overload must reject open-loop arrivals");
    assert!(sat_run.knee.found(), "overload must find a knee");
    assert!(sat_run
        .steps
        .iter()
        .any(|s| s.achieved_rps < s.offered_rps * 0.9));
}

#[test]
fn error_budget_accounts_for_every_scheduled_arrival() {
    let (store, workload) = fixture();
    let engine = ServeEngine::new(
        ServeConfig::new(1)
            .with_mode(rooted())
            .with_queue_capacity(4)
            .with_service_hold(200.0),
    );
    let config = LoadConfig::new(RampSchedule::new(
        250.0,
        250.0,
        Duration::from_millis(80),
        500.0,
    ))
    .with_seed(5)
    .with_request_timeout(Duration::from_millis(40));
    let run = run_capacity(&engine, &store, &workload, &config);

    let budget = run.report.error_budget;
    // Every scheduled arrival was issued (admitted or rejected) or shed —
    // and all three land in the engine's request count.
    assert_eq!(budget.requests, run.offered_total());
    let rejected: usize = run.steps.iter().map(|s| s.rejected + s.shed).sum();
    assert_eq!(budget.rejected, rejected);
    // Per-step expiry counts only cover completions observed inside step
    // windows; drained stragglers land in the report's budget too.
    let expired: usize = run.steps.iter().map(|s| s.deadline_expired).sum();
    assert!(budget.deadline_expired >= expired);
    assert_eq!(budget.dropped(), budget.rejected + budget.deadline_expired);
    assert!(budget.dropped() > 0, "overload must burn error budget");
    assert!(run.report.wall_clock_qps > 0.0);
}

#[test]
fn answers_stay_identical_to_sequential_under_service_hold() {
    let graph = social_graph(300, 11);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(64)),
        &workload,
    );
    let sequential_store = PartitionedStore::new(graph.clone(), partitioning.clone());
    let executor = QueryExecutor::default().with_mode(rooted());
    let expected = executor.execute_workload(&sequential_store, &workload, 120, 42);

    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(
        ServeConfig::new(2)
            .with_mode(rooted())
            .with_service_hold(3.0),
    );
    let report = engine.serve_batch(&sharded, &workload, 120, 42);
    assert_eq!(
        report.aggregate, expected,
        "service-time emulation changed the answers"
    );
}

#[test]
fn session_capacity_facade_measures_and_requires_a_workload() {
    let graph = social_graph(300, 11);
    let workload = motif_workload();
    let spec = PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count()));
    let config = LoadConfig::new(RampSchedule::new(
        200.0,
        0.0,
        Duration::from_millis(60),
        200.0,
    ))
    .with_seed(9);

    let mut session = Session::builder(spec).workload(workload).build().unwrap();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream).unwrap();
    let run = session.capacity(graph.clone(), 2, &config).unwrap();
    assert_eq!(run.steps.len(), 1);
    assert_eq!(run.report.error_budget.requests, run.offered_total());
    assert!(run.offered_total() > 0);

    // No workload → nothing to offer: the façade refuses.
    let mut bare = Session::builder(spec).build().unwrap();
    bare.ingest_stream(&stream).unwrap();
    let err = bare
        .serve(graph)
        .unwrap()
        .sharded(2)
        .capacity(&config)
        .unwrap_err();
    assert!(matches!(err, SessionError::MissingWorkload(_)));
}
