//! End-to-end integration tests across the whole LOOM stack: generate a
//! graph and a workload, mine the workload, partition the stream with every
//! partitioner, execute the workload in the simulator, and check that the
//! headline claims of the paper hold in direction.

use loom::loom_sim::runner::{ExperimentConfig, ExperimentRunner, PartitionerKind};
use loom::prelude::*;
use loom_graph::generators::motif_planted::MotifPlantConfig;

fn l(x: u32) -> Label {
    Label::new(x)
}

/// A motif-heavy transaction-style graph plus the workload that traverses the
/// planted motifs.
fn motif_scenario(seed: u64) -> (LabelledGraph, Workload) {
    let abc = path_graph(3, &[l(0), l(1), l(2)]);
    let square = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
    let (graph, _) = motif_planted_graph(
        &MotifPlantConfig {
            background_vertices: 800,
            background_edges: 2_000,
            instances_per_motif: 80,
            attachment_edges: 1,
            label_count: 4,
            seed,
        },
        &[abc, square],
    )
    .expect("valid plant config");
    let q_abc = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
    let q_square = PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)]).unwrap();
    let q_ab = PatternQuery::path(QueryId::new(2), &[l(0), l(1)]).unwrap();
    let workload = Workload::new(vec![(q_abc, 4.0), (q_square, 2.0), (q_ab, 1.0)]).unwrap();
    (graph, workload)
}

#[test]
fn every_partitioner_assigns_every_vertex() {
    let (graph, workload) = motif_scenario(1);
    let runner = ExperimentRunner::new(ExperimentConfig {
        query_samples: 20,
        window_size: 128,
        ..ExperimentConfig::new(4)
    });
    let tpstry = runner.mine_workload(&workload).unwrap();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 2 });
    for kind in [
        PartitionerKind::Hash,
        PartitionerKind::Ldg,
        PartitionerKind::Fennel,
        PartitionerKind::Loom,
        PartitionerKind::Offline,
    ] {
        let partitioning = runner
            .partition_with(kind, &graph, &stream, &tpstry)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        assert_eq!(
            partitioning.assigned_count(),
            graph.vertex_count(),
            "{} left vertices unassigned",
            kind.name()
        );
        for v in graph.vertices_sorted() {
            let p = partitioning.partition_of(v).expect("assigned");
            assert!(p.0 < 4, "partition id out of range for {}", kind.name());
        }
    }
}

#[test]
fn loom_improves_workload_locality_over_workload_agnostic_baselines() {
    let (graph, workload) = motif_scenario(7);
    // 400 sampled queries: at 80 the local-only fraction is dominated by
    // sampling noise (a single lucky query flips the comparison).
    let runner = ExperimentRunner::new(ExperimentConfig {
        query_samples: 400,
        window_size: 128,
        motif_threshold: 0.3,
        ..ExperimentConfig::new(8)
    });
    let results = runner
        .run_many(
            &[
                PartitionerKind::Hash,
                PartitionerKind::Ldg,
                PartitionerKind::Loom,
            ],
            &graph,
            &StreamOrder::Random { seed: 5 },
            &workload,
        )
        .unwrap();
    let by_name = |name: &str| results.iter().find(|r| r.partitioner == name).unwrap();
    let hash = by_name("hash");
    let ldg = by_name("ldg");
    let loom = by_name("loom");

    // Headline direction: the workload-aware partitioner answers more of the
    // workload locally than the agnostic streaming baseline, and hash is the
    // worst of the three.
    assert!(
        loom.local_only_fraction >= ldg.local_only_fraction,
        "LOOM local-only {:.3} < LDG {:.3}",
        loom.local_only_fraction,
        ldg.local_only_fraction
    );
    assert!(
        loom.ipt_probability <= hash.ipt_probability,
        "LOOM ipt {:.3} should not exceed hash {:.3}",
        loom.ipt_probability,
        hash.ipt_probability
    );
    assert!(
        ldg.cut_ratio < hash.cut_ratio,
        "LDG should cut fewer edges than hash"
    );
    // Balance must stay within the configured slack for the streaming
    // partitioners.
    for r in [ldg, loom] {
        assert!(
            r.imbalance <= 1.35,
            "{} imbalance {}",
            r.partitioner,
            r.imbalance
        );
    }
}

#[test]
fn workload_agnostic_equivalence_when_no_motif_is_frequent() {
    // With an index built at an unattainable threshold, LOOM tracks no motifs
    // and must still produce a complete, balanced partitioning (the
    // degenerate windowed-LDG behaviour).
    let (graph, workload) = motif_scenario(3);
    let tpstry = MotifMiner::default().mine(&workload).unwrap();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let config = LoomConfig::new(4, graph.vertex_count()).with_window_size(64);
    let empty_index = loom_core::FrequentMotifIndex::new(&tpstry, 1.01);
    assert!(empty_index.is_empty());
    let mut loom = LoomPartitioner::with_index(config, empty_index).unwrap();
    let partitioning = partition_stream(&mut loom, &stream).unwrap();
    assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    assert_eq!(loom.loom_stats().clusters_assigned, 0);
    assert!(partitioning.imbalance() < 1.3);
}

#[test]
fn simulator_latency_tracks_ipt_probability() {
    // For the same partitioning, a more expensive remote hop must increase
    // mean latency but leave the traversal counts untouched.
    let (graph, workload) = motif_scenario(9);
    let tpstry = MotifMiner::default().mine(&workload).unwrap();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let mut ldg = LdgPartitioner::new(LdgConfig::new(4, graph.vertex_count())).unwrap();
    let partitioning = partition_stream(&mut ldg, &stream).unwrap();
    let store = PartitionedStore::new(graph.clone(), partitioning);

    let cheap = QueryExecutor::new(LatencyModel {
        local_hop_us: 1.0,
        remote_hop_us: 10.0,
    })
    .execute_workload(&store, &workload, 50, 1);
    let expensive = QueryExecutor::new(LatencyModel {
        local_hop_us: 1.0,
        remote_hop_us: 1_000.0,
    })
    .execute_workload(&store, &workload, 50, 1);

    assert_eq!(cheap.total_traversals, expensive.total_traversals);
    assert_eq!(cheap.remote_traversals, expensive.remote_traversals);
    if cheap.remote_traversals > 0 {
        assert!(expensive.mean_latency_us() > cheap.mean_latency_us());
    }
    let _ = tpstry;
}

#[test]
fn stream_round_trip_preserves_graph_for_all_orderings() {
    let (graph, _) = motif_scenario(11);
    for order in [
        StreamOrder::Random { seed: 1 },
        StreamOrder::Bfs,
        StreamOrder::Dfs,
        StreamOrder::Adversarial,
        StreamOrder::Stochastic {
            seed: 2,
            jump_probability: 0.1,
        },
    ] {
        let stream = GraphStream::from_graph(&graph, &order);
        let rebuilt = stream.materialise();
        assert_eq!(rebuilt.vertex_count(), graph.vertex_count());
        assert_eq!(rebuilt.edges_sorted(), graph.edges_sorted());
    }
}
