//! Integration suite for the message-passing transport layer and
//! per-request deadlines / cooperative cancellation.
//!
//! Four properties matter:
//!
//! * **parity** — the coordinator/worker message protocol is an
//!   implementation detail: for unbounded requests the transport-backed
//!   engine returns metrics (and match cursors) identical to the sequential
//!   executor at every worker count;
//! * **deadlines** — an already-expired deadline short-circuits every
//!   execution at zero traversal cost, and a mid-run deadline measurably
//!   cuts traversals while flagging the partial result;
//! * **cancellation** — firing a request's cancel token unwinds in-flight
//!   searches without ever tearing an epoch pin, even while new epochs are
//!   being published concurrently;
//! * **monotonicity** — a cancelled execution never finds *more* matches
//!   than the same execution left to run (property-based).

use loom::prelude::*;
use loom_graph::generators::{barabasi_albert, GeneratorConfig};
use loom_partition::hash::HashConfig;
use loom_partition::spec::LoomConfig;
use loom_sim::matcher::{execute_plan_ctx, ExecOptions};
use loom_sim::plan::GraphStatistics;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn l(x: u32) -> Label {
    Label::new(x)
}

fn social_graph(vertices: usize, seed: u64) -> LabelledGraph {
    barabasi_albert(
        GeneratorConfig {
            vertices,
            label_count: 4,
            seed,
        },
        3,
    )
    .expect("valid BA parameters")
}

fn motif_workload() -> Workload {
    let q_path = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
    let q_cycle = PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)]).unwrap();
    let q_edge = PatternQuery::path(QueryId::new(2), &[l(0), l(1)]).unwrap();
    Workload::new(vec![(q_path, 4.0), (q_cycle, 2.0), (q_edge, 1.0)]).unwrap()
}

fn partitioned(graph: &LabelledGraph, spec: PartitionerSpec, workload: &Workload) -> Partitioning {
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .build()
        .unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(graph, &StreamOrder::Bfs))
        .unwrap();
    session.into_partitioning().unwrap()
}

/// (a) Message-passing execution is metric- and cursor-identical to the
/// sequential executor for unbounded requests, at every worker count.
#[test]
fn transport_engine_matches_sequential_for_unbounded_requests() {
    let graph = social_graph(500, 11);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Loom(LoomConfig::new(8, graph.vertex_count()).with_window_size(64)),
        &workload,
    );
    let mode = QueryMode::Rooted { seed_count: 3 };
    let sequential_store = PartitionedStore::new(graph.clone(), partitioning.clone());
    let executor = QueryExecutor::default().with_mode(mode);
    let expected = executor.execute_workload(&sequential_store, &workload, 150, 42);

    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    for workers in [1usize, 2, 3, 4, 8] {
        let engine = ServeEngine::new(ServeConfig::new(workers).with_mode(mode));
        let request = QueryRequest::workload(150).with_seed(42);
        let (report, response) =
            engine.run_request_ctx(&sharded, &workload, request, &RequestContext::unbounded());
        assert_eq!(
            report.aggregate, expected,
            "workers={workers}: transport aggregate diverged from sequential"
        );
        assert_eq!(response.metrics, expected);
        assert!(!response.metrics.deadline_exceeded);
        assert!(!response.metrics.cancelled);
        assert_eq!(report.shards.iter().map(|s| s.rejected).sum::<usize>(), 0);
    }
}

/// The match cursor is worker-count invariant too: collected embeddings come
/// back in the same global order regardless of how shards interleave.
#[test]
fn collected_matches_are_worker_count_invariant() {
    let graph = social_graph(300, 7);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let request = QueryRequest::workload(40)
        .with_seed(5)
        .collect_matches(true);
    let collect = |workers: usize| {
        ServeEngine::new(ServeConfig::new(workers).with_mode(QueryMode::Rooted { seed_count: 2 }))
            .run_request(&sharded, &workload, request)
            .1
            .into_cursor()
            .map(|e| e.iter().collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    let one = collect(1);
    assert!(!one.is_empty());
    assert_eq!(one, collect(3));
    assert_eq!(one, collect(8));
}

/// (b) An already-expired deadline returns zero traversals on every query,
/// flagged `deadline_exceeded` — whether it arrives on the request or on the
/// caller's context.
#[test]
fn expired_deadline_short_circuits_at_zero_traversals() {
    let graph = social_graph(300, 13);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(ServeConfig::new(4).with_mode(QueryMode::FullEnumeration));
    let expired = Instant::now() - Duration::from_secs(1);

    // Deadline on the request.
    let request = QueryRequest::workload(30)
        .with_seed(3)
        .with_deadline(expired);
    let (report, response) =
        engine.run_request_ctx(&sharded, &workload, request, &RequestContext::unbounded());
    assert_eq!(response.metrics.queries_executed, 30);
    assert_eq!(response.metrics.total_traversals, 0);
    assert_eq!(response.metrics.matches_found, 0);
    assert!(response.metrics.deadline_exceeded);
    assert!(!response.metrics.cancelled);
    assert_eq!(report.aggregate, response.metrics);

    // Same deadline on the context instead: identical outcome.
    let ctx = RequestContext::unbounded().with_deadline(expired);
    let (_, via_ctx) = engine.run_request_ctx(
        &sharded,
        &workload,
        QueryRequest::workload(30).with_seed(3),
        &ctx,
    );
    assert_eq!(via_ctx.metrics, response.metrics);
}

/// A mid-run deadline measurably cuts traversals relative to the unbounded
/// run while still accounting for every scheduled query.
#[test]
fn mid_run_deadline_cuts_traversals() {
    let graph = social_graph(700, 19);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(ServeConfig::new(2).with_mode(QueryMode::FullEnumeration));
    let samples = 300;

    let unbounded = engine
        .run_request(
            &sharded,
            &workload,
            QueryRequest::workload(samples).with_seed(17),
        )
        .1;
    assert!(unbounded.metrics.total_traversals > 0);

    // The invariant under test is that an expiring deadline cuts traversals
    // while still accounting for every scheduled query — not that any one
    // fixed timeout expires mid-run on this particular host. Tighten the
    // timeout until the cut is observed; `Duration::ZERO` is pre-expired, so
    // the final rung is deterministic (zero traversals vs a positive
    // unbounded count).
    let mut bounded = None;
    for timeout in [
        Duration::from_millis(1),
        Duration::from_micros(250),
        Duration::ZERO,
    ] {
        let attempt = engine
            .run_request(
                &sharded,
                &workload,
                QueryRequest::workload(samples)
                    .with_seed(17)
                    .with_timeout(timeout),
            )
            .1;
        assert_eq!(attempt.metrics.queries_executed, samples);
        assert!(attempt.metrics.deadline_exceeded);
        if attempt.metrics.total_traversals < unbounded.metrics.total_traversals {
            bounded = Some(attempt);
            break;
        }
    }
    let bounded = bounded.expect("even a pre-expired deadline must cut traversals");
    assert!(
        bounded.metrics.total_traversals < unbounded.metrics.total_traversals,
        "deadline did not cut traversals: {} vs {}",
        bounded.metrics.total_traversals,
        unbounded.metrics.total_traversals
    );
    assert!(bounded.metrics.matches_found <= unbounded.metrics.matches_found);
}

/// (c) Cancelling mid-run never tears an epoch pin: with a publisher
/// swapping epochs concurrently and the cancel token firing mid-run, every
/// query still pins exactly one *published* epoch and the run unwinds
/// cooperatively instead of wedging.
#[test]
fn cancelling_mid_run_never_tears_an_epoch_pin() {
    let graph = social_graph(600, 23);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let epochs = EpochStore::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(ServeConfig::new(4).with_mode(QueryMode::FullEnumeration));
    let cancel = CancelToken::new();
    let ctx = RequestContext::unbounded().with_cancel(cancel.clone());

    let (report, response) = std::thread::scope(|scope| {
        let epochs_ref = &epochs;
        let publisher = scope.spawn({
            let graph = graph.clone();
            let partitioning = partitioning.clone();
            move || {
                for _ in 0..5 {
                    epochs_ref.publish(ShardedStore::from_parts(&graph, &partitioning));
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        });
        let canceller = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            cancel.cancel();
        });
        let out = engine.run_request_epochs_ctx(
            &epochs,
            &workload,
            QueryRequest::workload(500).with_seed(29),
            &ctx,
        );
        publisher.join().expect("publisher panicked");
        canceller.join().expect("canceller panicked");
        out
    });

    // Every scheduled query was accounted for and pinned a published epoch.
    assert_eq!(response.metrics.queries_executed, 500);
    let last = epochs.current_epoch();
    assert!(!report.epochs_observed.is_empty());
    assert!(report.epochs_observed.iter().all(|&e| e >= 1 && e <= last));
    // The cancel landed mid-run (a full 500-sample enumeration takes far
    // longer than 2ms) and unwound cooperatively.
    assert!(response.metrics.cancelled);
    // The store still serves correctly after the cancelled run.
    let after = engine.serve_epochs(&epochs, &workload, 50, 31);
    assert_eq!(after.aggregate.queries_executed, 50);
    assert!(!after.aggregate.cancelled);
}

/// Halo sub-query handoff is answer-preserving: the same matches and query
/// count as direct per-shard execution, with the cursor bit-identical.
#[test]
fn halo_handoff_preserves_answers() {
    let graph = social_graph(400, 31);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(64)),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let mode = QueryMode::Rooted { seed_count: 3 };
    let request = QueryRequest::workload(60)
        .with_seed(9)
        .collect_matches(true);

    let direct = ServeEngine::new(ServeConfig::new(4).with_mode(mode))
        .run_request(&sharded, &workload, request)
        .1;
    let handoff = ServeEngine::new(ServeConfig::new(4).with_mode(mode).with_halo_handoff(true))
        .run_request(&sharded, &workload, request)
        .1;
    assert_eq!(
        handoff.metrics.queries_executed,
        direct.metrics.queries_executed
    );
    assert_eq!(handoff.metrics.matches_found, direct.metrics.matches_found);
    let direct_matches: Vec<_> = direct
        .into_cursor()
        .map(|e| e.iter().collect::<Vec<_>>())
        .collect();
    let handoff_matches: Vec<_> = handoff
        .into_cursor()
        .map(|e| e.iter().collect::<Vec<_>>())
        .collect();
    assert_eq!(direct_matches, handoff_matches);
}

/// The per-shard report carries the transport's queue instrumentation:
/// queue-wait percentiles are finite and ordered, and unbounded runs are
/// never rejected at admission.
#[test]
fn shard_reports_carry_queue_wait_instrumentation() {
    let graph = social_graph(400, 37);
    let workload = motif_workload();
    let partitioning = partitioned(
        &graph,
        PartitionerSpec::Hash(HashConfig::new(4, graph.vertex_count())),
        &workload,
    );
    let sharded = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
    let engine = ServeEngine::new(
        ServeConfig::new(4)
            .with_mode(QueryMode::Rooted { seed_count: 2 })
            .with_queue_capacity(2),
    );
    let report = engine.serve_batch(&sharded, &workload, 200, 41);
    assert_eq!(report.aggregate.queries_executed, 200);
    for shard in &report.shards {
        assert!(shard.queue_wait_p99_us.is_finite());
        assert!(shard.queue_wait_p99_us >= 0.0);
        assert_eq!(shard.rejected, 0, "unbounded run rejected requests");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (d) Cooperative cancellation is monotone: a cancelled execution never
    /// finds more matches than the identical uncancelled execution.
    #[test]
    fn cancelled_never_finds_more_matches(seed in 0u64..500, samples in 1usize..6) {
        let graph = social_graph(120, seed);
        let workload = motif_workload();
        let stats = GraphStatistics::from_graph(&graph);
        let planner = QueryPlanner::new(PlanStrategy::CostRanked);
        let partitioning = partitioned(
            &graph,
            PartitionerSpec::Hash(HashConfig::new(2, graph.vertex_count())),
            &workload,
        );
        let store = PartitionedStore::new(graph, partitioning);
        let fired = CancelToken::new();
        fired.cancel();
        let cancelled_ctx = RequestContext::unbounded().with_cancel(fired);
        for (i, query) in workload.queries().iter().take(samples).enumerate() {
            let plan = planner.plan(query, &stats);
            let opts = ExecOptions {
                mode: QueryMode::Rooted { seed_count: 2 },
                root_seed: seed.wrapping_add(i as u64),
                ..ExecOptions::default()
            };
            let free = execute_plan_ctx(&store, &plan, &opts, &RequestContext::unbounded());
            let cut = execute_plan_ctx(&store, &plan, &opts, &cancelled_ctx);
            prop_assert!(cut.metrics.matches_found <= free.metrics.matches_found);
            prop_assert!(cut.metrics.total_traversals <= free.metrics.total_traversals);
            prop_assert!(cut.metrics.cancelled);
            prop_assert!(!free.metrics.cancelled);
        }
    }
}
