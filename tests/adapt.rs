//! End-to-end workload-drift adaptation: the ISSUE 4 acceptance tests.
//!
//! A graph carries two disjoint planted motif families ([`DriftScenario`]).
//! The partitioning is mined and built for phase A (`abc` hot); the live
//! traffic then flips to phase B (`def` hot). The tests prove:
//!
//! * **parity** — the incrementally migrated store answers queries exactly
//!   like a from-scratch rebuild at the same placement;
//! * **recovery** — adaptive serving claws the remote-hop fraction back to
//!   near a freshly phase-B-mined partitioning, while the static placement
//!   stays degraded.

use loom::prelude::*;
use loom::session::Session;
use std::sync::Arc;

const K: u32 = 4;
const SAMPLES: usize = 400;
const MEASURE_SEED: u64 = 99;

fn scenario() -> DriftScenario {
    DriftScenario::small(17)
}

fn serve_config() -> ServeConfig {
    ServeConfig::new(K as usize).with_mode(QueryMode::Rooted { seed_count: 3 })
}

fn adapt_config(vertices: usize) -> AdaptConfig {
    AdaptConfig {
        migration: MigrationConfig::new(vertices / 8),
        max_rounds: 6,
        ..AdaptConfig::default()
    }
}

/// Mine `workload` and stream-partition the graph with LOOM.
fn mine(graph: &LabelledGraph, stream: &GraphStream, workload: &Workload) -> Partitioning {
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(K, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .build()
        .expect("LOOM session builds");
    session.ingest_stream(stream).expect("stream ingests");
    session.into_partitioning().expect("partitioning finishes")
}

/// Serve one measurement batch against a fixed placement.
fn measure(graph: &LabelledGraph, partitioning: &Partitioning, workload: &Workload) -> ServeReport {
    let store = Arc::new(ShardedStore::from_parts(graph, partitioning));
    ServeEngine::new(serve_config()).serve_batch(&store, workload, SAMPLES, MEASURE_SEED)
}

/// Drive adaptive serving through the phase change and return it after it
/// has adapted (plus how many serve batches it took).
fn adapt_through_phase_change(
    graph: &LabelledGraph,
    phase_a_partitioning: Partitioning,
    phase_a: &Workload,
    phase_b: &Workload,
) -> (AdaptiveServing, usize) {
    let mut adaptive = AdaptiveServing::new(
        graph.clone(),
        phase_a_partitioning,
        phase_a.clone(),
        serve_config(),
        adapt_config(graph.vertex_count()),
    );
    // A couple of in-distribution batches first: no adaptation may fire.
    for seed in 0..2 {
        let (_, outcome) = adaptive.serve(phase_a, 100, seed).expect("serves");
        assert!(outcome.is_none(), "phase-A traffic must not trigger drift");
    }
    // Phase change: keep serving until the tracker flags drift and adapts.
    let mut batches = 0;
    for seed in 10..20 {
        batches += 1;
        let (_, outcome) = adaptive.serve(phase_b, 200, seed).expect("serves");
        if outcome.is_some() {
            return (adaptive, batches);
        }
    }
    panic!("drift was never flagged across {batches} phase-B batches");
}

#[test]
fn migrated_store_matches_a_from_scratch_rebuild() {
    let scenario = scenario();
    let (graph, _) = scenario.build_graph().expect("scenario builds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let partitioning = mine(&graph, &stream, &scenario.phase_a());
    let (adaptive, _) = adapt_through_phase_change(
        &graph,
        partitioning,
        &scenario.phase_a(),
        &scenario.phase_b(),
    );
    assert!(adaptive.total_moved() > 0, "adaptation must move vertices");
    assert!(
        adaptive.current_epoch() > 1,
        "adaptation must publish epochs"
    );

    // (a) Parity: the incrementally migrated snapshot answers the same load
    // identically to ShardedStore::from_parts at the same placement.
    let migrated = adaptive.epochs().load();
    let rebuilt = Arc::new(ShardedStore::from_parts(&graph, adaptive.partitioning()));
    let engine = ServeEngine::new(serve_config());
    for (samples, seed) in [(200usize, 3u64), (SAMPLES, MEASURE_SEED)] {
        let a = engine.serve_batch(&migrated, &scenario.phase_b(), samples, seed);
        let b = engine.serve_batch(&rebuilt, &scenario.phase_b(), samples, seed);
        assert_eq!(a.aggregate, b.aggregate, "aggregate metrics diverge");
        assert_eq!(a.query_counts, b.query_counts);
        let a_shards: Vec<usize> = a.shards.iter().map(|s| s.queries).collect();
        let b_shards: Vec<usize> = b.shards.iter().map(|s| s.queries).collect();
        assert_eq!(a_shards, b_shards, "per-shard routing diverges");
    }
}

#[test]
fn adaptive_serving_recovers_after_the_phase_change_while_static_degrades() {
    let scenario = scenario();
    let (graph, _) = scenario.build_graph().expect("scenario builds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let phase_a = scenario.phase_a();
    let phase_b = scenario.phase_b();

    let static_partitioning = mine(&graph, &stream, &phase_a);
    let fresh_partitioning = mine(&graph, &stream, &phase_b);

    // Phase-B load on the stale phase-A placement vs a fresh phase-B mine.
    let static_report = measure(&graph, &static_partitioning, &phase_b);
    let fresh_report = measure(&graph, &fresh_partitioning, &phase_b);
    let static_rhf = static_report.remote_hop_fraction();
    let fresh_rhf = fresh_report.remote_hop_fraction();
    let gap = static_rhf - fresh_rhf;
    assert!(
        gap > 0.02,
        "scenario must open a real gap: static {static_rhf:.4} vs fresh {fresh_rhf:.4}"
    );

    let (adaptive, batches) =
        adapt_through_phase_change(&graph, static_partitioning.clone(), &phase_a, &phase_b);
    let adaptive_report = measure(&graph, adaptive.partitioning(), &phase_b);
    let adaptive_rhf = adaptive_report.remote_hop_fraction();

    println!(
        "remote-hop fraction: static {static_rhf:.4}, fresh {fresh_rhf:.4}, \
         adaptive {adaptive_rhf:.4} (gap {gap:.4}, recovered {:.0}%, \
         {} moved over {} epochs, flagged after {batches} phase-B batches)",
        (static_rhf - adaptive_rhf) / gap * 100.0,
        adaptive.total_moved(),
        adaptive.current_epoch() - 1,
    );

    // (b) Recovery: within 20% of the freshly-mined placement's remote-hop
    // fraction (measured as recovering at least 80% of the drift-opened
    // gap), while the static placement by definition recovers none of it.
    assert!(
        adaptive_rhf <= fresh_rhf + 0.2 * gap,
        "adaptive {adaptive_rhf:.4} did not recover to within 20% of fresh \
         {fresh_rhf:.4} (static {static_rhf:.4})"
    );
    // And adaptation must not have wrecked balance on the way.
    assert!(
        adaptive.partitioning().imbalance() < 1.6,
        "imbalance {:.3}",
        adaptive.partitioning().imbalance()
    );
}

#[test]
fn static_partitioning_stays_degraded_without_adaptation() {
    // The control arm: serving phase B on the phase-A placement repeatedly
    // (no adaptation) leaves the remote-hop fraction where it started.
    let scenario = scenario();
    let (graph, _) = scenario.build_graph().expect("scenario builds");
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let phase_b = scenario.phase_b();
    let partitioning = mine(&graph, &stream, &scenario.phase_a());
    let first = measure(&graph, &partitioning, &phase_b);
    let again = measure(&graph, &partitioning, &phase_b);
    assert_eq!(
        first.aggregate, again.aggregate,
        "static serving is deterministic and never improves"
    );
}
