//! Executable reproductions of the paper's illustrative figures.
//!
//! The paper contains no result tables; its three figures are worked
//! examples. Each test here pins one of them:
//!
//! * `fig1_worked_example` — the answer to query `q1` on the example graph is
//!   exactly the sub-graph on vertices {1, 2, 5, 6};
//! * `fig2_tpstry_structure` — the TPSTry++ mined from the Figure 1 workload
//!   contains the motifs the figure shows, with the expected p-values;
//! * `fig3_stream_matching` — two `abc` motif instances sharing an `a-b` edge
//!   are both detected by the stream matcher and assigned to one partition.

use loom::prelude::*;
use loom_core::matcher::StreamMotifMatcher;
use loom_core::FrequentMotifIndex;
use loom_graph::VertexId;
use loom_motif::fixtures::fig3_stream_graph;

fn l(x: u32) -> Label {
    Label::new(x)
}

#[test]
fn fig1_worked_example() {
    let graph = paper_example_graph();
    let workload = paper_example_workload();

    // q1: the a-b / b-a square. Its only answer is the sub-graph on
    // vertices 1, 2, 5, 6 (paper §1).
    let q1 = workload.query(QueryId::new(1)).expect("q1 exists");
    let matches = find_matches(q1.graph(), &graph);
    assert!(!matches.is_empty(), "q1 must have at least one embedding");
    for embedding in &matches {
        let mut image: Vec<u64> = embedding.values().map(|v| v.raw()).collect();
        image.sort_unstable();
        assert_eq!(image, vec![1, 2, 5, 6]);
    }

    // q2 (a-b-c) and q3 (a-b-c-d) also have answers in the example graph.
    for id in [QueryId::new(2), QueryId::new(3)] {
        let q = workload.query(id).expect("query exists");
        assert!(
            !find_matches(q.graph(), &graph).is_empty(),
            "query {id} should match the Figure 1 graph"
        );
    }
}

#[test]
fn fig2_tpstry_structure() {
    let workload = paper_example_workload();
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    assert!(tpstry.check_invariants().is_ok());

    // Figure 2 shows, among others, these motifs for the Figure 1 workload.
    // p-values: a motif's support is the fraction of queries containing it.
    let expectations: Vec<(LabelledGraph, f64)> = vec![
        // single labels
        (single_vertex(l(0)), 1.0),       // a: in q1, q2, q3
        (single_vertex(l(1)), 1.0),       // b
        (single_vertex(l(2)), 2.0 / 3.0), // c: q2, q3
        (single_vertex(l(3)), 1.0 / 3.0), // d: q3 only
        // edges
        (path_graph(2, &[l(0), l(1)]), 1.0), // a-b: all queries
        (path_graph(2, &[l(1), l(2)]), 2.0 / 3.0), // b-c
        (path_graph(2, &[l(2), l(3)]), 1.0 / 3.0), // c-d
        // longer paths
        (path_graph(3, &[l(0), l(1), l(2)]), 2.0 / 3.0), // a-b-c
        (path_graph(4, &[l(0), l(1), l(2), l(3)]), 1.0 / 3.0), // a-b-c-d
        // the q1 square and its 3-vertex sub-path
        (cycle_graph(4, &[l(0), l(1), l(0), l(1)]), 1.0 / 3.0),
        (path_graph(3, &[l(1), l(0), l(1)]), 1.0 / 3.0),
    ];
    for (motif, expected_p) in expectations {
        let id = tpstry
            .find_isomorphic(&motif)
            .unwrap_or_else(|| panic!("motif with {} vertices missing", motif.vertex_count()));
        let p = tpstry.p_value(id);
        assert!(
            (p - expected_p).abs() < 1e-9,
            "motif with {} vertices / {} edges: expected p {expected_p:.3}, got {p:.3}",
            motif.vertex_count(),
            motif.edge_count()
        );
    }

    // The roots of the DAG are the four single-label motifs.
    assert_eq!(tpstry.roots().len(), 4);
}

#[test]
fn fig3_stream_matching() {
    // Workload: the abc path (the motif of Figure 3).
    let abc = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).expect("valid query");
    let workload = Workload::uniform(vec![abc]).expect("valid workload");
    let tpstry = MotifMiner::default()
        .mine(&workload)
        .expect("mining succeeds");
    let index = FrequentMotifIndex::new(&tpstry, 0.5);
    let mut matcher = StreamMotifMatcher::new(index);

    // Stream the Figure 3 graph into a window.
    let (graph, [a, b, c1, c2]) = fig3_stream_graph();
    let mut window = StreamWindow::new(16);
    for v in [a, b, c1, c2] {
        window.push_vertex(v, graph.label(v).expect("labelled"));
    }
    for (x, y) in [(a, b), (b, c1), (b, c2)] {
        window.push_edge(x, y);
        matcher.on_window_edge(&window, x, y);
    }

    // Both overlapping abc instances are tracked, and the cluster anchored at
    // the shared a-b edge covers all four vertices — so LOOM assigns them
    // together, avoiding the inter-partition edge Figure 3 warns about.
    let three_vertex_matches: Vec<Vec<VertexId>> = matcher
        .matches()
        .iter()
        .filter(|m| m.len() == 3)
        .map(|m| m.vertices.clone())
        .collect();
    assert!(three_vertex_matches.contains(&vec![a, b, c1]));
    assert!(three_vertex_matches.contains(&vec![a, b, c2]));
    let cluster = matcher.cluster_for(a, true);
    assert_eq!(cluster.len(), 4);

    // End-to-end: partitioning the Figure 3 graph with LOOM puts all four
    // vertices in one partition.
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let config = LoomConfig::new(2, graph.vertex_count())
        .with_window_size(4)
        .with_motif_threshold(0.5);
    let mut loom = LoomPartitioner::new(config, &tpstry).expect("valid config");
    let partitioning = partition_stream(&mut loom, &stream).expect("stream consumed");
    let home = partitioning.partition_of(a);
    assert!(home.is_some());
    for v in [b, c1, c2] {
        assert_eq!(partitioning.partition_of(v), home);
    }
}

fn single_vertex(label: Label) -> LabelledGraph {
    let mut g = LabelledGraph::new();
    g.add_vertex(label);
    g
}
