//! Tests exercising the documented public API surface end to end:
//! the README usage snippet, the `Session` façade, the declarative
//! spec/registry layer (trait-object round-trips, batched vs per-element
//! parity), graph statistics, the growth scenario and the report rendering —
//! everything a downstream user would touch first.

use loom::loom_sim::report::comparison_table;
use loom::prelude::*;
use loom_graph::stats::{clustering_coefficient, degree_histogram, degree_stats};
use loom_graph::VertexId;

#[test]
fn readme_usage_snippet_compiles_and_runs() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the partitioner declaratively and hand the workload Q to a
    //    Session (which mines the TPSTry++ internally).
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let spec = PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(64));
    let mut session = Session::builder(spec).workload(workload).build()?;

    // 2. Stream the graph in batches.
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream)?;

    // 3. Measure what the workload actually pays on that partitioning —
    //    plans are compiled once at serve() and every request reuses them.
    let serving = session.serve(graph)?;
    let metrics = serving
        .run(QueryRequest::workload(1_000).with_seed(42))
        .metrics;
    assert!(metrics.inter_partition_probability() <= 1.0);
    assert_eq!(metrics.queries_executed, 1_000);

    // 4. Stream concrete matches for one query through the cursor.
    let q = serving.workload().expect("workload set").queries()[0].id();
    let response = serving.run(QueryRequest::query(q).collect_matches(true));
    let found = response.metrics.matches_found;
    assert_eq!(response.into_cursor().count(), found);
    Ok(())
}

/// Every `PartitionerSpec` variant builds a `Box<dyn Partitioner>` through
/// the workload registry; batched (several chunk sizes) and per-element
/// ingestion of the paper-example stream yield identical partitionings.
#[test]
fn every_spec_round_trips_as_a_trait_object() -> Result<(), Box<dyn std::error::Error>> {
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let tpstry = MotifMiner::default().mine(&workload)?;
    let registry = workload_registry(&tpstry);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let n = graph.vertex_count();

    let specs = [
        PartitionerSpec::Hash(HashConfig::new(2, n)),
        PartitionerSpec::Ldg(LdgConfig::new(2, n)),
        PartitionerSpec::Fennel(FennelConfig::new(2, n, graph.edge_count())),
        PartitionerSpec::Loom(LoomConfig::new(2, n).with_window_size(4)),
    ];

    for spec in specs {
        // Per-element reference run.
        let mut reference: Box<dyn Partitioner> = registry.build(&spec)?;
        assert_eq!(reference.name(), spec.name());
        for element in &stream {
            reference.ingest(element)?;
        }
        let reference = reference.finish()?;
        assert_eq!(reference.assigned_count(), n, "{}", spec.name());

        let assignments = |p: &Partitioning| {
            let mut rows: Vec<(VertexId, PartitionId)> = p.assignments().collect();
            rows.sort_unstable();
            rows
        };

        // Batched runs at several chunk sizes must agree exactly.
        for chunk_size in [1usize, 3, 64, 1024] {
            let mut partitioner = registry.build(&spec)?;
            let batched = partition_stream_batched(partitioner.as_mut(), &stream, chunk_size)?;
            assert_eq!(
                assignments(&batched),
                assignments(&reference),
                "{} diverged at chunk size {chunk_size}",
                spec.name()
            );
        }
    }
    Ok(())
}

/// Snapshots are non-destructive and stats are reported uniformly across
/// every spec-built trait object.
#[test]
fn trait_objects_snapshot_and_report_stats() -> Result<(), Box<dyn std::error::Error>> {
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let tpstry = MotifMiner::default().mine(&workload)?;
    let registry = workload_registry(&tpstry);
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let n = graph.vertex_count();

    let specs = [
        PartitionerSpec::Hash(HashConfig::new(2, n)),
        PartitionerSpec::Ldg(LdgConfig::new(2, n)),
        PartitionerSpec::Fennel(FennelConfig::new(2, n, graph.edge_count())),
        PartitionerSpec::Loom(LoomConfig::new(2, n).with_window_size(4)),
    ];
    for spec in specs {
        let mut partitioner = registry.build(&spec)?;
        partitioner.ingest_batch(stream.elements())?;
        let stats = partitioner.stats();
        assert_eq!(stats.vertices_ingested, n, "{}", spec.name());
        assert_eq!(stats.edges_ingested, graph.edge_count(), "{}", spec.name());
        assert_eq!(stats.batches_ingested, 1, "{}", spec.name());
        assert_eq!(stats.assigned + stats.buffered, n, "{}", spec.name());
        // Snapshot now, finish later: snapshot must not disturb the run.
        let snapshot = partitioner.snapshot();
        assert_eq!(snapshot.assigned_count(), stats.assigned);
        let finished = partitioner.finish()?;
        assert_eq!(finished.assigned_count(), n, "{}", spec.name());
    }
    Ok(())
}

#[test]
fn graph_statistics_describe_generated_graphs() {
    let ba = barabasi_albert(GeneratorConfig::new(3_000, 4, 5), 3).unwrap();
    let stats = degree_stats(&ba);
    assert!(stats.max >= stats.p99 && stats.p99 >= stats.median);
    assert!(stats.mean > 5.0 && stats.mean < 7.0, "mean {}", stats.mean);
    let histogram = degree_histogram(&ba);
    assert_eq!(histogram.iter().sum::<usize>(), ba.vertex_count());
    let clustering = clustering_coefficient(&ba);
    assert!(
        clustering > 0.0 && clustering < 0.5,
        "clustering {clustering}"
    );
}

#[test]
fn growth_scenario_contrasts_streaming_and_offline() {
    let graph = barabasi_albert(GeneratorConfig::new(1_200, 4, 11), 2).unwrap();
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 4 });
    let scenario = GrowthScenario::new(4, 4);

    let mut ldg = LdgPartitioner::new(LdgConfig::new(4, graph.vertex_count())).unwrap();
    let streaming = scenario.run_streaming(&mut ldg, &stream).unwrap();
    let offline = scenario.run_offline_periodic(&stream).unwrap();

    assert_eq!(streaming.len(), 4);
    assert_eq!(offline.len(), 4);
    // Streaming adapts without migrations; offline repartitioning moves data.
    assert!(streaming.iter().all(|c| c.churn == 0.0));
    assert!(offline.iter().skip(1).any(|c| c.churn > 0.0));
    // Offline ends with a cut at least as good as streaming's.
    assert!(offline.last().unwrap().cut_ratio <= streaming.last().unwrap().cut_ratio + 0.05);
    // Both saw the whole graph by the end.
    assert_eq!(streaming.last().unwrap().vertices, graph.vertex_count());
    assert_eq!(offline.last().unwrap().vertices, graph.vertex_count());
}

#[test]
fn experiment_runner_rows_render_into_tables_and_csv() {
    let graph = barabasi_albert(GeneratorConfig::new(800, 4, 9), 2).unwrap();
    let workload = WorkloadGenerator {
        query_count: 8,
        label_count: 4,
        core_count: 2,
        core_length: 3,
        max_extension: 1,
        zipf_exponent: 1.0,
        seed: 2,
    }
    .generate()
    .unwrap();
    let runner = ExperimentRunner::new(ExperimentConfig {
        query_samples: 20,
        window_size: 64,
        ..ExperimentConfig::new(4)
    });
    let results = runner
        .run_many(
            &[PartitionerKind::Ldg, PartitionerKind::Loom],
            &graph,
            &StreamOrder::Bfs,
            &workload,
        )
        .unwrap();
    let table = comparison_table("api surface check", &results);
    let rendered = table.render();
    assert!(rendered.contains("ldg") && rendered.contains("loom"));
    let csv = table.to_csv();
    assert_eq!(csv.trim().lines().count(), 3); // header + two rows
}

#[test]
fn rooted_and_full_query_modes_are_both_available() {
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let mut partitioning = Partitioning::new(2, 4).unwrap();
    for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
        partitioning
            .assign(v, PartitionId::new((i % 2) as u32))
            .unwrap();
    }
    let store = PartitionedStore::new(graph, partitioning);
    let full = QueryExecutor::default().execute_workload(&store, &workload, 50, 1);
    let rooted = QueryExecutor::default()
        .with_mode(QueryMode::Rooted { seed_count: 1 })
        .execute_workload(&store, &workload, 50, 1);
    assert!(rooted.total_traversals <= full.total_traversals);
    assert_eq!(full.queries_executed, rooted.queries_executed);
}

/// The transport layer's wire-shape contract: every message that crosses
/// `ShardTransport` is a plain serde-serializable value (no shared-memory
/// handle), and the trait itself is object-safe — the properties that make
/// the in-process transport socket-ready by construction.
#[test]
fn shard_transport_messages_are_wire_shaped_and_object_safe() {
    fn assert_wire<T: serde::Serialize + for<'de> serde::Deserialize<'de> + Send + 'static>() {}
    assert_wire::<ShardMsg>();
    assert_wire::<loom_serve::QueryTaskMsg>();
    assert_wire::<loom_serve::SubQueryMsg>();
    assert_wire::<loom_serve::QueryDoneMsg>();
    assert_wire::<loom_serve::ShardReportMsg>();

    // Object safety: the trait is usable behind a dyn pointer, and a pair of
    // in-process endpoints round-trips a message through it.
    let (a, b) = InProcTransport::pair(4);
    let transport: &dyn ShardTransport = &a;
    transport
        .send(ShardMsg::EpochPublished { epoch: 3 }, None)
        .unwrap();
    let received = b.recv(None).unwrap();
    assert_eq!(received, ShardMsg::EpochPublished { epoch: 3 });
    transport.shutdown();
}
