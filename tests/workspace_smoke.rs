//! Workspace-surface smoke test: the umbrella crate's re-exports resolve and
//! a minimal end-to-end pipeline (generate → stream → partition → metric)
//! runs. This is the first thing to break if a crate manifest, a prelude
//! re-export or an inter-crate dependency goes missing.

use loom::prelude::*;

/// Every layer's headline types are reachable through `loom::prelude::*` and
/// through the per-crate re-exports on the umbrella crate.
#[test]
fn prelude_reexports_resolve() {
    // loom_graph
    let _graph: LabelledGraph = LabelledGraph::new();
    let _label: Label = Label::new(0);
    let _order: StreamOrder = StreamOrder::Bfs;
    // loom_motif
    let _miner: MotifMiner = MotifMiner::default();
    let _table: PrimeTable = PrimeTable::new(4);
    // loom_partition (via loom_core's prelude)
    let _hash = HashPartitioner::new(2, 8).unwrap();
    let _config: LoomConfig = LoomConfig::new(2, 8);
    // loom_sim
    let _latency: LatencyModel = LatencyModel::default();

    // The individual crates are also exposed as modules on the umbrella.
    let _ = loom::loom_graph::Label::new(1);
    let _ = loom::loom_motif::PrimeTable::new(2);
    let _ = loom::loom_partition::PartitionId::new(0);
    let _ = loom::loom_core::LoomConfig::new(2, 8);
    let _ = loom::loom_sim::LatencyModel::default();
}

/// Generate a small graph, stream it, partition it with LOOM, and check the
/// quality metrics are coherent — one pass over the whole stack.
#[test]
fn trivial_pipeline_runs_end_to_end() {
    // Generate.
    let graph = erdos_renyi(GeneratorConfig::new(200, 3, 17), 4).unwrap();
    assert_eq!(graph.vertex_count(), 200);

    // Mine a tiny workload.
    let query = PatternQuery::path(QueryId::new(0), &[Label::new(0), Label::new(1)]).unwrap();
    let workload = Workload::uniform(vec![query]).unwrap();
    let tpstry = MotifMiner::default().mine(&workload).unwrap();

    // Stream.
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 3 });

    // Partition.
    let config = LoomConfig::new(4, graph.vertex_count()).with_window_size(32);
    let mut partitioner = LoomPartitioner::new(config, &tpstry).unwrap();
    let partitioning = partition_stream(&mut partitioner, &stream).unwrap();
    assert_eq!(partitioning.assigned_count(), graph.vertex_count());

    // Metric.
    let report = partitioning.quality(&graph);
    assert_eq!(report.total_edges, graph.edge_count());
    assert!(report.cut_edges <= report.total_edges);
    assert!((0.0..=1.0).contains(&report.cut_ratio));
    assert!(report.imbalance >= 1.0);
}
