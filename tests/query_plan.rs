//! The compile-once query-plan acceptance suite.
//!
//! Four contracts are pinned here:
//!
//! * **planner-vs-legacy parity** — executing a compiled plan returns
//!   *identical* match counts and traversal metrics to the pre-redesign
//!   per-call path (`loom_sim::matcher::execute_query`) for every workload
//!   query, seed and mode under [`PlanStrategy::Legacy`], and identical
//!   full-enumeration match counts under the default cost-ranked strategy
//!   (the embedding count of a query is order-invariant);
//! * **compile-once reuse** — one [`QueryPlan`] instance per [`QueryId`]
//!   per workload, observably shared by the router, the sequential
//!   executor and the sharded workers (plan-cache hit counters);
//! * **cross-engine parity** — `QueryEngine::run` returns the same metrics
//!   from the sequential executor, the sharded engine and adaptive serving
//!   for the same request;
//! * **cursor semantics** — `MatchCursor` with an unbounded limit yields
//!   exactly `matches_found` embeddings (property-tested over random
//!   graphs), and a bounded limit terminates the search early (strictly
//!   fewer traversals than the unlimited run).

use loom::prelude::*;
use loom_graph::VertexId;
use loom_sim::matcher;
use proptest::prelude::*;
use std::sync::Arc;

fn l(x: u32) -> Label {
    Label::new(x)
}

/// The paper's Figure-1 workload over its example graph, aligned on a
/// 2-partition split.
fn paper_store() -> (PartitionedStore, Workload) {
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let mut part = Partitioning::new(2, 8).unwrap();
    for v in 1..=8u64 {
        part.assign(VertexId::new(v), PartitionId::new((v % 2) as u32))
            .unwrap();
    }
    (PartitionedStore::new(graph, part), workload)
}

/// A generated multi-core workload over a planted graph (richer shapes than
/// the paper example: branches, longer paths, skewed frequencies).
fn generated() -> (PartitionedStore, Workload) {
    let workload = WorkloadGenerator {
        query_count: 10,
        label_count: 4,
        core_count: 3,
        core_length: 3,
        max_extension: 2,
        zipf_exponent: 1.0,
        seed: 5,
    }
    .generate()
    .unwrap();
    let graph = barabasi_albert(GeneratorConfig::new(400, 4, 7), 3).unwrap();
    let n = graph.vertex_count();
    let mut part = Partitioning::new(4, n).unwrap();
    for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
        part.assign(v, PartitionId::new((i % 4) as u32)).unwrap();
    }
    (PartitionedStore::new(graph, part), workload)
}

/// Legacy-strategy planned execution is bit-identical to the pre-redesign
/// per-call path, for every workload query, seed and mode.
#[test]
fn legacy_plans_reproduce_the_pre_redesign_path_exactly() {
    for (store, workload) in [paper_store(), generated()] {
        let stats = GraphStatistics::from_graph(store.graph());
        let cache = Arc::new(PlanCache::compile(
            &QueryPlanner::new(PlanStrategy::Legacy),
            &workload,
            &stats,
        ));
        for mode in [
            QueryMode::FullEnumeration,
            QueryMode::Rooted { seed_count: 2 },
        ] {
            let executor = QueryExecutor::default()
                .with_mode(mode)
                .with_plan_cache(Arc::clone(&cache));
            for (query, _) in workload.iter() {
                for seed in 0..4u64 {
                    let reference = matcher::execute_query(
                        &store,
                        query,
                        mode,
                        executor.match_limit(),
                        executor.latency_model(),
                        seed,
                    );
                    let planned = executor.execute_seeded(&store, query, seed);
                    assert_eq!(
                        planned,
                        reference,
                        "query {} mode {mode:?} seed {seed}",
                        query.id()
                    );
                }
            }
        }
    }
}

/// Full-enumeration match counts are order-invariant: the default
/// cost-ranked plans find exactly the same embeddings as the legacy path,
/// at an estimated cost never above the legacy order's.
#[test]
fn cost_ranked_plans_preserve_match_counts() {
    for (store, workload) in [paper_store(), generated()] {
        let stats = GraphStatistics::from_graph(store.graph());
        let ranked = QueryPlanner::new(PlanStrategy::CostRanked);
        let legacy = QueryPlanner::new(PlanStrategy::Legacy);
        for (query, _) in workload.iter() {
            let ranked_plan = ranked.plan(query, &stats);
            let legacy_plan = legacy.plan(query, &stats);
            assert!(
                ranked_plan.est_cost() <= legacy_plan.est_cost() + 1e-9,
                "query {}: cost-ranked must never be priced above legacy",
                query.id()
            );
            let opts = loom_sim::matcher::ExecOptions {
                match_limit: usize::MAX,
                ..Default::default()
            };
            let a = matcher::execute_plan(&store, &ranked_plan, &opts);
            let b = matcher::execute_plan(&store, &legacy_plan, &opts);
            assert_eq!(
                a.metrics.matches_found,
                b.metrics.matches_found,
                "query {}: embedding count is order-invariant",
                query.id()
            );
        }
    }
}

/// The acceptance contract: one plan instance per query id per workload,
/// derived once and observably reused by the router, the sequential
/// executor and the sharded workers.
#[test]
fn one_plan_per_query_reused_by_router_and_executor() {
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let spec = PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .query_mode(QueryMode::Rooted { seed_count: 2 })
        .build()
        .unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    let serving = session.serve(graph).unwrap();

    let cache = serving.plan_cache().expect("compiled at serve()").clone();
    assert_eq!(cache.len(), workload.len(), "one plan per workload query");
    assert_eq!(cache.hits(), 0, "compilation is not a lookup");

    // The same single instance is handed out on every lookup.
    let id = workload.queries()[0].id();
    let a = cache.get(id).unwrap();
    let b = cache.get(id).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    let baseline = cache.hits();

    // Sequential executor: one resolution per *distinct* sampled query per
    // run — not per sample.
    serving.run(QueryRequest::workload(50).with_seed(1));
    let sequential_lookups = cache.hits() - baseline;
    assert!(sequential_lookups >= 1 && sequential_lookups <= workload.len());

    // Sharded engine: the router *and* the workers share that same one
    // resolution per distinct query — identical hit pattern, zero misses.
    let sharded = serving.sharded(2);
    let before = cache.hits();
    sharded.run(QueryRequest::workload(50).with_seed(1));
    assert_eq!(cache.hits(), before + sequential_lookups);
    assert_eq!(cache.misses(), 0);

    // A single-query request resolves exactly one plan, on either engine.
    let before = cache.hits();
    serving.run(QueryRequest::query(id).with_samples(10));
    sharded.run(QueryRequest::query(id).with_samples(10));
    assert_eq!(cache.hits(), before + 2);
}

/// `QueryEngine::run` parity across all three engines: sequential,
/// sharded, adaptive — identical metrics for identical requests, equal to
/// the legacy entry points.
#[test]
fn query_engine_parity_across_sequential_sharded_and_adaptive() {
    let graph = barabasi_albert(GeneratorConfig::new(300, 4, 13), 3).unwrap();
    let workload = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
            3.0,
        ),
        (
            PatternQuery::branch(QueryId::new(1), l(1), &[l(0), l(2)]).unwrap(),
            1.0,
        ),
    ])
    .unwrap();
    let spec = PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(64));
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .query_mode(QueryMode::Rooted { seed_count: 3 })
        .build()
        .unwrap();
    session
        .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
        .unwrap();
    let serving = session.serve(graph).unwrap();
    let sharded = serving.sharded(4);
    let adaptive = serving.adaptive(4, AdaptConfig::default()).unwrap();

    let engines: [(&str, &dyn QueryEngine); 3] = [
        ("sequential", &serving),
        ("sharded", &sharded),
        ("adaptive", &adaptive),
    ];
    for request in [
        QueryRequest::workload(120).with_seed(17),
        QueryRequest::query(QueryId::new(0))
            .with_samples(20)
            .with_seed(3),
        QueryRequest::query(QueryId::new(1))
            .with_samples(10)
            .with_seed(8)
            .with_match_limit(5),
        // A raw zero limit (the builder clamps, the pub field does not) is
        // a no-op probe on every engine alike.
        QueryRequest {
            match_limit: Some(0),
            ..QueryRequest::workload(10).with_seed(2)
        },
    ] {
        let reference = serving.run(request).metrics;
        for (name, engine) in engines {
            assert_eq!(
                engine.run(request).metrics,
                reference,
                "{name} diverged on {request:?}"
            );
        }
    }
    // Every engine shares the session's one compiled cache.
    let cache = serving.plan_cache().unwrap();
    assert!(Arc::ptr_eq(cache, sharded.plan_cache().unwrap()));
    assert!(Arc::ptr_eq(cache, adaptive.plan_cache().unwrap()));
}

/// Cursor contents agree across engines, element for element, regardless of
/// worker counts.
#[test]
fn cursors_are_identical_across_engines() {
    let (store, workload) = paper_store();
    let cache = Arc::new(PlanCache::compile(
        &QueryPlanner::default(),
        &workload,
        &GraphStatistics::from_graph(store.graph()),
    ));
    let sequential = SequentialEngine::new(
        store.clone(),
        workload.clone(),
        QueryExecutor::default().with_plan_cache(Arc::clone(&cache)),
    );
    let sharded_store = Arc::new(ShardedStore::from_store(&store));
    let engine = ServeEngine::new(ServeConfig::new(2).with_mode(QueryMode::FullEnumeration))
        .with_plan_cache(Arc::clone(&cache));

    let request = QueryRequest::workload(40)
        .with_seed(2)
        .collect_matches(true);
    let a: Vec<Embedding> = sequential.run(request).into_cursor().collect();
    let (_, response) = engine.run_request(&sharded_store, &workload, request);
    let b: Vec<Embedding> = response.into_cursor().collect();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// Match limits terminate the search early: strictly fewer traversals than
/// the unlimited run, and the cursor yields exactly the limit.
#[test]
fn match_limits_cut_traversals_and_bound_the_cursor() {
    // A hub with 60 like-labelled leaves: the 2-vertex query has 60
    // embeddings, so a limit of 5 must stop the scan long before the end.
    let mut graph = LabelledGraph::new();
    let hub = graph.add_vertex(l(0));
    for _ in 0..60 {
        let leaf = graph.add_vertex(l(1));
        graph.add_edge(hub, leaf).unwrap();
    }
    let mut part = Partitioning::new(2, 64).unwrap();
    for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
        part.assign(v, PartitionId::new((i % 2) as u32)).unwrap();
    }
    let workload = Workload::uniform(vec![
        PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap()
    ])
    .unwrap();
    let engine = SequentialEngine::new(
        PartitionedStore::new(graph, part),
        workload,
        QueryExecutor::default(),
    );

    let unlimited = engine.run(QueryRequest::query(QueryId::new(0)).collect_matches(true));
    let limited = engine.run(
        QueryRequest::query(QueryId::new(0))
            .with_match_limit(5)
            .collect_matches(true),
    );
    assert_eq!(unlimited.metrics.matches_found, 60);
    assert!(!unlimited.metrics.matches_limited);
    assert_eq!(limited.metrics.matches_found, 5);
    assert!(limited.metrics.matches_limited);
    assert!(
        limited.metrics.total_traversals < unlimited.metrics.total_traversals,
        "early termination must cut traversals: {} !< {}",
        limited.metrics.total_traversals,
        unlimited.metrics.total_traversals
    );
    assert_eq!(limited.into_cursor().count(), 5);
    assert_eq!(unlimited.into_cursor().count(), 60);
}

/// Strategy: a random small labelled graph (path backbone plus extra
/// edges) and a 2–3 label path query drawn from the same alphabet.
fn graph_and_query_strategy() -> impl Strategy<Value = (LabelledGraph, PatternQuery)> {
    (
        proptest::collection::vec(0u32..3, 4..12),
        proptest::collection::vec((0usize..12, 0usize..12), 0..6),
        proptest::collection::vec(0u32..3, 2..4),
    )
        .prop_map(|(labels, extra_edges, query_labels)| {
            let mut g = LabelledGraph::new();
            let vertices: Vec<VertexId> = labels.iter().map(|&x| g.add_vertex(l(x))).collect();
            for w in vertices.windows(2) {
                let _ = g.add_edge_idempotent(w[0], w[1]);
            }
            for (a, b) in extra_edges {
                if a < vertices.len() && b < vertices.len() && a != b {
                    let _ = g.add_edge_idempotent(vertices[a], vertices[b]);
                }
            }
            let query_labels: Vec<Label> = query_labels.into_iter().map(l).collect();
            let query = PatternQuery::path(QueryId::new(0), &query_labels).unwrap();
            (g, query)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `MatchCursor` with an unbounded limit yields exactly `matches_found`
    /// embeddings — every enumerated match is materialised, none invented.
    #[test]
    fn cursor_with_unbounded_limit_yields_exactly_match_count(
        (graph, query) in graph_and_query_strategy(),
        split in 2u32..4,
    ) {
        let n = graph.vertex_count();
        let mut part = Partitioning::new(split, n).unwrap();
        for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new(i as u32 % split)).unwrap();
        }
        let workload = Workload::uniform(vec![query]).unwrap();
        let engine = SequentialEngine::new(
            PartitionedStore::new(graph, part),
            workload,
            QueryExecutor::default(),
        );
        let response = engine.run(
            QueryRequest::query(QueryId::new(0))
                .with_match_limit(usize::MAX)
                .collect_matches(true),
        );
        let found = response.metrics.matches_found;
        prop_assert!(!response.metrics.matches_limited);
        let embeddings: Vec<Embedding> = response.into_cursor().collect();
        prop_assert_eq!(embeddings.len(), found);
        // Embeddings are pairwise distinct assignments.
        for (i, a) in embeddings.iter().enumerate() {
            for b in &embeddings[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }
}
