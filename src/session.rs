//! The top-level `Session` façade over the whole LOOM stack.
//!
//! A [`Session`] ties the paper's pipeline (§4) into one entry point:
//!
//! 1. **mine** — the query workload `Q` is summarised into a TPSTry++ when
//!    the session is built;
//! 2. **build** — the partitioner is constructed from a declarative
//!    [`PartitionerSpec`] through the workload-aware registry, as a
//!    `Box<dyn Partitioner>`;
//! 3. **ingest** — stream elements are fed in batches
//!    ([`Session::ingest_stream`] chunks a whole [`GraphStream`]);
//! 4. **plan** — [`Session::serve`] compiles every workload query **once**
//!    into a [`QueryPlan`](loom_sim::plan::QueryPlan) against the graph's
//!    statistics, shared through an `Arc<PlanCache>` by every layer below;
//! 5. **serve** — the partitioned graph goes into a [`PartitionedStore`] +
//!    [`QueryExecutor`] pair behind the unified [`QueryEngine`] API;
//!    [`Serving::sharded`] additionally freezes the store into a
//!    `loom-serve` [`ShardedStore`] and stands up the concurrent
//!    worker-shard engine — same plans, same metrics.
//!
//! ```
//! use loom::session::Session;
//! use loom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = paper_example_graph();
//! let workload = paper_example_workload();
//! let spec = PartitionerSpec::Loom(
//!     LoomConfig::new(2, graph.vertex_count()).with_window_size(4),
//! );
//!
//! let mut session = Session::builder(spec).workload(workload).build()?;
//! let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
//! session.ingest_stream(&stream)?;
//!
//! let serving = session.serve(graph)?;
//! let response = serving.run(QueryRequest::workload(100).with_seed(7));
//! assert!(response.metrics.inter_partition_probability() <= 1.0);
//! # Ok(())
//! # }
//! ```

use loom_adapt::adaptive::{AdaptConfig, AdaptiveServing};
use loom_graph::{GraphStream, LabelledGraph, StreamElement};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_motif::MotifError;
use loom_partition::partition::Partitioning;
use loom_partition::spec::{PartitionerRegistry, PartitionerSpec};
use loom_partition::traits::{Partitioner, PartitionerStats, DEFAULT_BATCH_SIZE};
use loom_partition::PartitionError;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::context::RequestContext;
use loom_sim::engine::{run_sequential_ctx, QueryEngine, QueryRequest, QueryResponse};
use loom_sim::executor::{ExecutionMetrics, LatencyModel, QueryExecutor, QueryMode};
use loom_sim::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use loom_sim::store::PartitionedStore;
use std::fmt;
use std::sync::Arc;

/// Errors produced while building or driving a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// The partitioner layer failed (invalid spec, assignment error, …).
    Partition(PartitionError),
    /// Workload mining failed.
    Motif(MotifError),
    /// An operation needed a workload but none was configured.
    MissingWorkload(&'static str),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Partition(e) => write!(f, "partitioning failed: {e}"),
            SessionError::Motif(e) => write!(f, "workload mining failed: {e}"),
            SessionError::MissingWorkload(what) => {
                write!(
                    f,
                    "{what} needs a workload: pass one via Session::builder(..).workload(..)"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Partition(e) => Some(e),
            SessionError::Motif(e) => Some(e),
            SessionError::MissingWorkload(_) => None,
        }
    }
}

impl From<PartitionError> for SessionError {
    fn from(e: PartitionError) -> Self {
        SessionError::Partition(e)
    }
}

impl From<MotifError> for SessionError {
    fn from(e: MotifError) -> Self {
        SessionError::Motif(e)
    }
}

/// Result alias for session operations.
pub type SessionResult<T> = std::result::Result<T, SessionError>;

/// Fluent builder for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    spec: PartitionerSpec,
    workload: Option<Workload>,
    chunk_size: usize,
    latency: LatencyModel,
    query_mode: QueryMode,
    match_limit: Option<usize>,
    plan_strategy: PlanStrategy,
}

impl SessionBuilder {
    /// The query workload the partitioner should optimise for. Mandatory for
    /// [`PartitionerSpec::Loom`]; optional (it only drives serving-side
    /// query execution) for the workload-agnostic baselines.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Chunk size for [`Session::ingest_stream`] (default
    /// [`DEFAULT_BATCH_SIZE`]). Batched and per-element ingestion yield
    /// identical partitionings; this only affects throughput.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Latency model for the serving-side query executor.
    #[must_use]
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Query execution mode for the serving-side executor.
    #[must_use]
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.query_mode = mode;
        self
    }

    /// Cap the number of embeddings enumerated per query execution (guards
    /// against pathological queries on dense graphs).
    #[must_use]
    pub fn match_limit(mut self, limit: usize) -> Self {
        self.match_limit = Some(limit);
        self
    }

    /// How workload queries are compiled into plans at [`Session::serve`]
    /// (default [`PlanStrategy::CostRanked`]; [`PlanStrategy::Legacy`]
    /// reproduces the pre-planner matching order bit-for-bit).
    #[must_use]
    pub fn plan_strategy(mut self, strategy: PlanStrategy) -> Self {
        self.plan_strategy = strategy;
        self
    }

    /// Mine the workload (if any) and build the partitioner from its spec.
    ///
    /// # Errors
    ///
    /// Fails when the spec is [`PartitionerSpec::Loom`] but no workload was
    /// given, when mining fails, or when the spec's configuration is invalid.
    pub fn build(self) -> SessionResult<Session> {
        let registry = match &self.workload {
            Some(workload) => {
                let tpstry = MotifMiner::default().mine(workload)?;
                loom_core::workload_registry(&tpstry)
            }
            None => {
                if matches!(self.spec, PartitionerSpec::Loom(_)) {
                    return Err(SessionError::MissingWorkload("building a LOOM partitioner"));
                }
                PartitionerRegistry::baselines()
            }
        };
        let partitioner = registry.build(&self.spec)?;
        Ok(Session {
            partitioner,
            spec: self.spec,
            workload: self.workload,
            chunk_size: self.chunk_size,
            latency: self.latency,
            query_mode: self.query_mode,
            match_limit: self.match_limit,
            plan_strategy: self.plan_strategy,
        })
    }
}

/// A live partitioning session: one partitioner consuming a graph stream,
/// ready to hand the result off for query serving.
pub struct Session {
    partitioner: Box<dyn Partitioner>,
    spec: PartitionerSpec,
    workload: Option<Workload>,
    chunk_size: usize,
    latency: LatencyModel,
    query_mode: QueryMode,
    match_limit: Option<usize>,
    plan_strategy: PlanStrategy,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("partitioner", &self.partitioner.name())
            .field("spec", &self.spec)
            .field("chunk_size", &self.chunk_size)
            .field("workload", &self.workload.is_some())
            .finish()
    }
}

impl Session {
    /// Start building a session around a declarative partitioner spec.
    pub fn builder(spec: PartitionerSpec) -> SessionBuilder {
        SessionBuilder {
            spec,
            workload: None,
            chunk_size: DEFAULT_BATCH_SIZE,
            latency: LatencyModel::default(),
            query_mode: QueryMode::default(),
            match_limit: None,
            plan_strategy: PlanStrategy::default(),
        }
    }

    /// The spec the partitioner was built from.
    pub fn spec(&self) -> &PartitionerSpec {
        &self.spec
    }

    /// The partitioner's short, stable name.
    pub fn partitioner_name(&self) -> &'static str {
        self.partitioner.name()
    }

    /// Feed a single stream element.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors.
    pub fn ingest(&mut self, element: &StreamElement) -> SessionResult<()> {
        Ok(self.partitioner.ingest(element)?)
    }

    /// Feed a contiguous chunk of stream elements at once.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors.
    pub fn ingest_batch(&mut self, batch: &[StreamElement]) -> SessionResult<()> {
        Ok(self.partitioner.ingest_batch(batch)?)
    }

    /// Feed a whole stream, chunked at the session's configured chunk size.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors.
    pub fn ingest_stream(&mut self, stream: &GraphStream) -> SessionResult<()> {
        for chunk in stream.elements().chunks(self.chunk_size) {
            self.partitioner.ingest_batch(chunk)?;
        }
        Ok(())
    }

    /// A non-destructive copy of the partitioning built so far (buffered
    /// vertices are still awaiting placement and are not included).
    pub fn snapshot(&self) -> Partitioning {
        self.partitioner.snapshot()
    }

    /// Unified ingestion counters.
    pub fn stats(&self) -> PartitionerStats {
        self.partitioner.stats()
    }

    /// Flush buffered vertices and move the final partitioning out, spending
    /// the session's partitioner. Prefer [`Session::serve`] to continue into
    /// query serving.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors from the flush.
    pub fn into_partitioning(mut self) -> SessionResult<Partitioning> {
        Ok(self.partitioner.finish()?)
    }

    /// Finish partitioning and hand off to the serving layer: every workload
    /// query is compiled **once** into a plan against the graph's statistics
    /// (the compile-once step every engine below reuses), and the partitioned
    /// `graph` goes into a [`PartitionedStore`] with a [`QueryExecutor`]
    /// configured from the session.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors from the final flush.
    pub fn serve(mut self, graph: LabelledGraph) -> SessionResult<Serving> {
        let partitioning = self.partitioner.finish()?;
        let plans = self.workload.as_ref().map(|workload| {
            let stats = GraphStatistics::from_graph(&graph);
            let planner = QueryPlanner::new(self.plan_strategy);
            Arc::new(PlanCache::compile(&planner, workload, &stats))
        });
        let store = PartitionedStore::new(graph, partitioning);
        let mut executor = QueryExecutor::new(self.latency).with_mode(self.query_mode);
        if let Some(limit) = self.match_limit {
            executor = executor.with_match_limit(limit);
        }
        if let Some(plans) = &plans {
            executor = executor.with_plan_cache(Arc::clone(plans));
        }
        Ok(Serving {
            store,
            executor,
            workload: self.workload,
            plans,
        })
    }
}

/// The serving half of a session: a partitioned store plus an instrumented
/// query executor, sharing the session's compiled plan cache.
#[derive(Debug, Clone)]
pub struct Serving {
    store: PartitionedStore,
    executor: QueryExecutor,
    workload: Option<Workload>,
    plans: Option<Arc<PlanCache>>,
}

impl Serving {
    /// The partitioned store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// The final partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        self.store.partitioning()
    }

    /// The query executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }

    /// The compiled plan cache every engine spawned from this handle shares
    /// (`None` when the session has no workload to compile).
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }

    /// The session's workload, if one was configured.
    pub fn workload(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// Execute `samples` queries drawn from an explicit workload. Queries
    /// matching the session workload (by id *and* structure) reuse its
    /// compiled plans; structurally foreign queries — even under colliding
    /// ids — are planned on the spot with the legacy heuristic.
    pub fn execute(&self, workload: &Workload, samples: usize, seed: u64) -> ExecutionMetrics {
        self.executor
            .execute_workload(&self.store, workload, samples, seed)
    }

    /// Freeze the store into a [`ShardedStore`] and stand up the concurrent
    /// serving engine with `workers` worker shards. The engine inherits the
    /// session's query mode, latency model, match limit **and compiled plan
    /// cache**, so its aggregate metrics are directly comparable to (in
    /// fact, identical to) the sequential [`Serving::run`] path for the
    /// same request.
    pub fn sharded(&self, workers: usize) -> ShardedServing {
        let config = ServeConfig::new(workers)
            .with_mode(self.executor.mode())
            .with_latency(self.executor.latency_model())
            .with_match_limit(self.executor.match_limit());
        let mut engine = ServeEngine::new(config);
        if let Some(plans) = &self.plans {
            engine = engine.with_plan_cache(Arc::clone(plans));
        }
        ShardedServing {
            store: Arc::new(ShardedStore::from_store(&self.store)),
            engine,
            workload: self.workload.clone(),
        }
    }

    /// Stand up **adaptive** serving with `workers` worker shards: the
    /// `loom-adapt` loop tracks the observed query mix against the session's
    /// mined workload, and on drift incrementally migrates the placement —
    /// rebuilding only the affected shards and publishing the result as a new
    /// epoch, while in-flight queries keep their pinned snapshot. The engine
    /// inherits the session's query mode, latency model and match limit like
    /// [`Serving::sharded`].
    ///
    /// # Errors
    ///
    /// Fails when the session was built without a workload — drift is
    /// measured against the mined mix, so adaptive serving requires one.
    pub fn adaptive(&self, workers: usize, config: AdaptConfig) -> SessionResult<AdaptiveServing> {
        let Some(workload) = &self.workload else {
            return Err(SessionError::MissingWorkload("adaptive serving"));
        };
        let serve = ServeConfig::new(workers)
            .with_mode(self.executor.mode())
            .with_latency(self.executor.latency_model())
            .with_match_limit(self.executor.match_limit());
        let mut adaptive = AdaptiveServing::new(
            self.store.graph().clone(),
            self.store.partitioning().clone(),
            workload.clone(),
            serve,
            config,
        );
        if let Some(plans) = &self.plans {
            adaptive = adaptive.with_plan_cache(Arc::clone(plans));
        }
        Ok(adaptive)
    }
}

/// The sequential face of the unified engine API: requests run on the
/// calling thread through the session's [`QueryExecutor`], its
/// [`PartitionedStore`] and the shared compiled plan cache. The
/// [`RequestContext`]'s deadline and cancellation token are observed by
/// every scheduled execution.
///
/// Sessions without a workload return an empty response for workload
/// requests (there is nothing to sample).
impl QueryEngine for Serving {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        match &self.workload {
            Some(workload) => {
                run_sequential_ctx(&self.executor, &self.store, workload, request, ctx)
            }
            None => QueryResponse::from_engine(
                ExecutionMetrics::default(),
                Vec::new(),
                request.collect_matches,
            ),
        }
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }
}

/// The concurrent serving half of a session: an immutable sharded snapshot
/// plus the `loom-serve` engine, created by [`Serving::sharded`].
#[derive(Debug, Clone)]
pub struct ShardedServing {
    store: Arc<ShardedStore>,
    engine: ServeEngine,
    workload: Option<Workload>,
}

impl ShardedServing {
    /// The pinned sharded snapshot.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The serving engine.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Serve `samples` queries drawn from an explicit workload. Queries
    /// matching the session workload (by id *and* structure) reuse its
    /// compiled plans; structurally foreign queries — even under colliding
    /// ids — are planned on the spot with the legacy heuristic.
    pub fn serve(&self, workload: &Workload, samples: usize, seed: u64) -> ServeReport {
        self.engine
            .serve_batch(&self.store, workload, samples, seed)
    }

    /// Execute a unified [`QueryRequest`] and return both the per-shard
    /// [`ServeReport`] and the request's [`QueryResponse`]. Sessions without
    /// a workload serve an empty report.
    pub fn serve_request(&self, request: QueryRequest) -> (ServeReport, QueryResponse) {
        self.serve_request_ctx(request, &RequestContext::unbounded())
    }

    /// Like [`ShardedServing::serve_request`], under an explicit
    /// [`RequestContext`]: the context's deadline (tightened by the
    /// request's own) bounds admission and execution, and firing its cancel
    /// token cooperatively unwinds every in-flight worker.
    pub fn serve_request_ctx(
        &self,
        request: QueryRequest,
        ctx: &RequestContext,
    ) -> (ServeReport, QueryResponse) {
        match &self.workload {
            Some(workload) => self
                .engine
                .run_request_ctx(&self.store, workload, request, ctx),
            None => (
                ServeReport::default(),
                QueryResponse::from_engine(
                    ExecutionMetrics::default(),
                    Vec::new(),
                    request.collect_matches,
                ),
            ),
        }
    }
}

/// The concurrent face of the unified engine API: requests are routed and
/// executed across the worker shards from the same compiled plans as the
/// sequential path, so for any request `run` returns **identical** metrics
/// (and cursor contents) to [`Serving::run`] over the same session.
impl QueryEngine for ShardedServing {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        self.serve_request_ctx(request, ctx).1
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.engine.plan_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::ordering::StreamOrder;
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_partition::ldg::LdgConfig;
    use loom_partition::spec::LoomConfig;

    #[test]
    fn full_pipeline_runs_through_the_facade() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec)
            .workload(workload)
            .chunk_size(3)
            .build()
            .unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        session.ingest_stream(&stream).unwrap();
        assert_eq!(session.partitioner_name(), "loom");
        assert_eq!(session.stats().vertices_ingested, graph.vertex_count());
        let serving = session.serve(graph.clone()).unwrap();
        assert_eq!(
            serving.partitioning().assigned_count(),
            graph.vertex_count()
        );
        // Plans were compiled once per workload query at serve() time.
        let cache = serving
            .plan_cache()
            .expect("workload session compiles plans");
        assert_eq!(cache.len(), 3);
        let response = serving.run(QueryRequest::workload(200).with_seed(7));
        assert_eq!(response.metrics.queries_executed, 200);
        assert!(response.metrics.inter_partition_probability() <= 1.0);
        // One resolution per distinct sampled query — observably reused.
        assert!(cache.hits() >= 1 && cache.hits() <= cache.len());
    }

    #[test]
    fn baselines_run_without_a_workload() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        session.ingest_stream(&stream).unwrap();
        let partitioning = session.into_partitioning().unwrap();
        assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    }

    #[test]
    fn loom_spec_without_workload_is_rejected_at_build() {
        let spec = PartitionerSpec::Loom(LoomConfig::new(2, 8));
        let err = Session::builder(spec).build().expect_err("must fail");
        assert!(err.to_string().contains("workload"));
    }

    #[test]
    fn serving_without_workload_serves_empty_responses() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        assert!(serving.plan_cache().is_none(), "no workload, no plans");
        // The unified API serves an empty response instead of failing.
        let response = serving.run(QueryRequest::workload(10));
        assert_eq!(response.metrics.queries_executed, 0);
        // An explicit workload still works.
        let metrics = serving.execute(&paper_example_workload(), 10, 1);
        assert_eq!(metrics.queries_executed, 10);
    }

    #[test]
    fn unified_api_agrees_across_engines_and_reports() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let request = QueryRequest::workload(60).with_seed(9);
        let sharded = serving.sharded(2);
        // The per-shard report's aggregate is the response's metrics.
        let (report, response) = sharded.serve_request(request);
        assert_eq!(report.aggregate, response.metrics);
        assert!(report.shards.iter().all(|s| s.rejected == 0));
        // Sequential and sharded answers agree request-for-request, and an
        // unbounded context reproduces `run` exactly.
        assert_eq!(serving.run(request).metrics, sharded.run(request).metrics);
        assert_eq!(
            serving
                .run_ctx(request, &RequestContext::unbounded())
                .metrics,
            sharded.run(request).metrics
        );
    }

    #[test]
    fn deadline_bounded_request_flags_the_response() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let expired = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let request = QueryRequest::workload(25)
            .with_seed(3)
            .with_deadline(expired);
        let response = serving.run(request);
        assert_eq!(response.metrics.queries_executed, 25);
        assert_eq!(response.metrics.total_traversals, 0);
        assert!(response.metrics.deadline_exceeded);
        // The sharded engine reports the same short-circuit.
        let sharded = serving.sharded(2);
        let sharded_response = sharded.run(request);
        assert_eq!(sharded_response.metrics.queries_executed, 25);
        assert_eq!(sharded_response.metrics.total_traversals, 0);
        assert!(sharded_response.metrics.deadline_exceeded);
    }

    #[test]
    fn adaptive_serving_stands_up_through_the_facade() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let workload = paper_example_workload();
        let mut adaptive = serving.adaptive(2, AdaptConfig::default()).unwrap();
        let (report, outcome) = adaptive.serve(&workload, 50, 5).unwrap();
        assert_eq!(report.queries, 50);
        // Matching traffic: no adaptation fires.
        assert!(outcome.is_none());
        assert_eq!(adaptive.current_epoch(), 1);
    }

    #[test]
    fn adaptive_serving_without_workload_is_rejected() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        assert!(serving.adaptive(2, AdaptConfig::default()).is_err());
    }

    #[test]
    fn snapshot_mid_stream_is_partial_but_consistent() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let half = stream.len() / 2;
        session.ingest_batch(&stream.elements()[..half]).unwrap();
        let snap = session.snapshot();
        assert!(snap.assigned_count() <= graph.vertex_count());
        // Continue after the snapshot: the session is undisturbed.
        session.ingest_batch(&stream.elements()[half..]).unwrap();
        let partitioning = session.into_partitioning().unwrap();
        assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    }
}
