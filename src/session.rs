//! The top-level `Session` façade over the whole LOOM stack.
//!
//! A [`Session`] ties the paper's pipeline (§4) into one entry point:
//!
//! 1. **mine** — the query workload `Q` is summarised into a TPSTry++ when
//!    the session is built;
//! 2. **build** — the partitioner is constructed from a declarative
//!    [`PartitionerSpec`] through the workload-aware registry, as a
//!    `Box<dyn Partitioner>`;
//! 3. **ingest** — stream elements are fed in batches
//!    ([`Session::ingest_stream`] chunks a whole [`GraphStream`]);
//! 4. **plan** — [`Session::serve`] compiles every workload query **once**
//!    into a [`QueryPlan`](loom_sim::plan::QueryPlan) against the graph's
//!    statistics, shared through an `Arc<PlanCache>` by every layer below;
//! 5. **serve** — the partitioned graph goes into a [`PartitionedStore`] +
//!    [`QueryExecutor`] pair behind the unified [`QueryEngine`] API;
//!    [`Serving::sharded`] additionally freezes the store into a
//!    `loom-serve` [`ShardedStore`] and stands up the concurrent
//!    worker-shard engine — same plans, same metrics.
//!
//! ```
//! use loom::session::Session;
//! use loom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = paper_example_graph();
//! let workload = paper_example_workload();
//! let spec = PartitionerSpec::Loom(
//!     LoomConfig::new(2, graph.vertex_count()).with_window_size(4),
//! );
//!
//! let mut session = Session::builder(spec).workload(workload).build()?;
//! let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
//! session.ingest_stream(&stream)?;
//!
//! let serving = session.serve(graph)?;
//! let response = serving.run(QueryRequest::workload(100).with_seed(7));
//! assert!(response.metrics.inter_partition_probability() <= 1.0);
//! # Ok(())
//! # }
//! ```

use loom_adapt::adaptive::{AdaptConfig, AdaptiveServing};
use loom_graph::{GraphStream, LabelledGraph, StreamElement};
use loom_load::{run_capacity, CapacityRun, LoadConfig};
use loom_motif::mining::MotifMiner;
use loom_motif::workload::Workload;
use loom_motif::MotifError;
use loom_obs::{stage, FlightKind, Histogram, SpanTimer, Telemetry};
use loom_partition::partition::Partitioning;
use loom_partition::spec::{PartitionerRegistry, PartitionerSpec};
use loom_partition::traits::{Partitioner, PartitionerStats, DEFAULT_BATCH_SIZE};
use loom_partition::PartitionError;
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::epoch::{EpochStore, SubscriptionId};
use loom_serve::metrics::ServeReport;
use loom_serve::shard::ShardedStore;
use loom_sim::context::RequestContext;
use loom_sim::engine::{run_sequential_ctx, QueryEngine, QueryRequest, QueryResponse};
use loom_sim::executor::{ExecutionMetrics, LatencyModel, QueryExecutor, QueryMode};
use loom_sim::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use loom_sim::store::PartitionedStore;
use loom_store::recovery::RecoveryReport;
use loom_store::{CheckpointSink, StoreError, Wal, WAL_FILE};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Errors produced while building or driving a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// The partitioner layer failed (invalid spec, assignment error, …).
    Partition(PartitionError),
    /// Workload mining failed.
    Motif(MotifError),
    /// An operation needed a workload but none was configured.
    MissingWorkload(&'static str),
    /// The durability layer failed (IO error, corrupt on-disk state, …).
    Store(StoreError),
    /// Durable state on disk is inconsistent with the session configuration
    /// (e.g. a checkpoint written by a different partitioner spec), or a
    /// durability operation was invoked on a session without one.
    Durability(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Partition(e) => write!(f, "partitioning failed: {e}"),
            SessionError::Motif(e) => write!(f, "workload mining failed: {e}"),
            SessionError::MissingWorkload(what) => {
                write!(
                    f,
                    "{what} needs a workload: pass one via Session::builder(..).workload(..)"
                )
            }
            SessionError::Store(e) => write!(f, "durability failed: {e}"),
            SessionError::Durability(detail) => write!(f, "durability mismatch: {detail}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Partition(e) => Some(e),
            SessionError::Motif(e) => Some(e),
            SessionError::Store(e) => Some(e),
            SessionError::MissingWorkload(_) | SessionError::Durability(_) => None,
        }
    }
}

impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> Self {
        SessionError::Store(e)
    }
}

impl From<PartitionError> for SessionError {
    fn from(e: PartitionError) -> Self {
        SessionError::Partition(e)
    }
}

impl From<MotifError> for SessionError {
    fn from(e: MotifError) -> Self {
        SessionError::Motif(e)
    }
}

/// Result alias for session operations.
pub type SessionResult<T> = std::result::Result<T, SessionError>;

/// Fluent builder for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    spec: PartitionerSpec,
    workload: Option<Workload>,
    chunk_size: usize,
    latency: LatencyModel,
    query_mode: QueryMode,
    match_limit: Option<usize>,
    plan_strategy: PlanStrategy,
    durability: Option<PathBuf>,
    telemetry: Option<Arc<Telemetry>>,
}

impl SessionBuilder {
    /// The query workload the partitioner should optimise for. Mandatory for
    /// [`PartitionerSpec::Loom`]; optional (it only drives serving-side
    /// query execution) for the workload-agnostic baselines.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Chunk size for [`Session::ingest_stream`] (default
    /// [`DEFAULT_BATCH_SIZE`]). Batched and per-element ingestion yield
    /// identical partitionings; this only affects throughput.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Latency model for the serving-side query executor.
    #[must_use]
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Query execution mode for the serving-side executor.
    #[must_use]
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.query_mode = mode;
        self
    }

    /// Cap the number of embeddings enumerated per query execution (guards
    /// against pathological queries on dense graphs).
    #[must_use]
    pub fn match_limit(mut self, limit: usize) -> Self {
        self.match_limit = Some(limit);
        self
    }

    /// How workload queries are compiled into plans at [`Session::serve`]
    /// (default [`PlanStrategy::CostRanked`]; [`PlanStrategy::Legacy`]
    /// reproduces the pre-planner matching order bit-for-bit).
    #[must_use]
    pub fn plan_strategy(mut self, strategy: PlanStrategy) -> Self {
        self.plan_strategy = strategy;
        self
    }

    /// Persist everything this session ingests under `root`: every batch is
    /// written to a write-ahead log before it reaches the partitioner, and
    /// every [`Session::checkpoint`] serializes the sharded store in the
    /// background. A session built this way can be brought back after a
    /// crash with [`Session::recover`].
    #[must_use]
    pub fn with_durability(mut self, root: impl Into<PathBuf>) -> Self {
        self.durability = Some(root.into());
        self
    }

    /// Observe this session with a [`Telemetry`] bundle: ingestion charges
    /// `ingest.wal_append` / `ingest.partition` spans, the durable layer
    /// charges `store.fsync` / `store.checkpoint_write` and leaves
    /// checkpoint-seal flight events, and every engine spawned from the
    /// session's [`Serving`] handle inherits the same bundle. Sessions built
    /// without telemetry take **zero** extra clock reads and produce
    /// bit-identical reports.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Build the partitioner this configuration describes (used by both
    /// `build` and the recovery path, which replays the WAL through a fresh
    /// instance).
    fn make_partitioner(&self) -> SessionResult<Box<dyn Partitioner>> {
        let registry = match &self.workload {
            Some(workload) => {
                let tpstry = MotifMiner::default().mine(workload)?;
                loom_core::workload_registry(&tpstry)
            }
            None => {
                if matches!(self.spec, PartitionerSpec::Loom(_)) {
                    return Err(SessionError::MissingWorkload("building a LOOM partitioner"));
                }
                PartitionerRegistry::baselines()
            }
        };
        Ok(registry.build(&self.spec)?)
    }

    /// Mine the workload (if any) and build the partitioner from its spec.
    ///
    /// # Errors
    ///
    /// Fails when the spec is [`PartitionerSpec::Loom`] but no workload was
    /// given, when mining fails, when the spec's configuration is invalid,
    /// or — for durable sessions — when the durability root already holds
    /// state (recover it with [`Session::recover`] instead of overwriting).
    pub fn build(self) -> SessionResult<Session> {
        let partitioner = self.make_partitioner()?;
        let durable = match &self.durability {
            Some(root) => Some(DurableState::create(root, &self, partitioner.name())?),
            None => None,
        };
        Ok(Session {
            partitioner,
            durable,
            ingest_spans: self.telemetry.as_deref().map(IngestSpans::resolve),
            telemetry: self.telemetry,
            spec: self.spec,
            workload: self.workload,
            chunk_size: self.chunk_size,
            latency: self.latency,
            query_mode: self.query_mode,
            match_limit: self.match_limit,
            plan_strategy: self.plan_strategy,
        })
    }

    /// Recover a crashed durable session from this configuration's
    /// durability root — shorthand for [`Session::recover`].
    ///
    /// # Errors
    ///
    /// See [`Session::recover`].
    pub fn recover(self) -> SessionResult<Recovered> {
        Session::recover(self)
    }
}

/// The durable half of a session: the write-ahead log, the incrementally
/// materialised graph, and the background checkpoint sink subscribed to the
/// epoch store.
struct DurableState {
    root: PathBuf,
    wal: Wal,
    graph: LabelledGraph,
    epochs: Arc<EpochStore>,
    sink: Arc<CheckpointSink>,
    sub: Option<SubscriptionId>,
}

impl fmt::Debug for DurableState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableState")
            .field("root", &self.root)
            .field("wal_records", &self.wal.records())
            .finish_non_exhaustive()
    }
}

impl DurableState {
    /// Stand up a **fresh** durability root: refuses to clobber one that
    /// already holds a WAL (that state belongs to [`Session::recover`]).
    fn create(root: &Path, builder: &SessionBuilder, spec_name: &str) -> SessionResult<Self> {
        std::fs::create_dir_all(root).map_err(|e| {
            SessionError::Store(StoreError::Io {
                path: root.to_path_buf(),
                source: e.to_string(),
            })
        })?;
        let wal_path = root.join(WAL_FILE);
        if wal_path.exists() {
            return Err(SessionError::Durability(format!(
                "{} already holds durable state; use Session::recover to resume it \
                 (or point with_durability at a fresh directory)",
                root.display()
            )));
        }
        let wal = Wal::create(&wal_path)?;
        let graph = LabelledGraph::new();
        let seed = Partitioning::new(builder.spec.k(), 1)?;
        let initial = ShardedStore::from_parts(&graph, &seed);
        Self::attach(
            root,
            wal,
            graph,
            initial,
            0,
            spec_name,
            builder.telemetry.as_ref(),
        )
    }

    /// Wrap recovered (or fresh) state: resume the epoch counter at
    /// `epoch_seq`, subscribe the background checkpoint sink, and — when the
    /// session is observed — point the WAL and the sink at the telemetry
    /// bundle's `store.*` histograms.
    fn attach(
        root: &Path,
        mut wal: Wal,
        graph: LabelledGraph,
        pinned: ShardedStore,
        epoch_seq: u64,
        spec_name: &str,
        telemetry: Option<&Arc<Telemetry>>,
    ) -> SessionResult<Self> {
        if let Some(t) = telemetry {
            wal.set_fsync_histogram(t.stage_histogram(stage::STORE_FSYNC));
        }
        let epochs = Arc::new(EpochStore::resume(pinned, epoch_seq));
        let (sink, sub) = CheckpointSink::attach(&epochs, root, spec_name);
        if let Some(t) = telemetry {
            sink.set_telemetry(Arc::clone(t));
        }
        sink.set_wal_records(wal.records());
        Ok(Self {
            root: root.to_path_buf(),
            wal,
            graph,
            epochs,
            sink,
            sub: Some(sub),
        })
    }

    /// Mirror an acknowledged batch into the in-memory durable graph (same
    /// idempotent semantics as `GraphStream::materialise`).
    fn apply(&mut self, batch: &[StreamElement]) {
        for element in batch {
            match *element {
                StreamElement::AddVertex { id, label } => {
                    self.graph.insert_vertex(id, label);
                }
                StreamElement::AddEdge { source, target } => {
                    let _ = self.graph.add_edge_idempotent(source, target);
                }
                StreamElement::RemoveVertex { id } => {
                    self.graph.remove_vertex(id);
                }
                StreamElement::RemoveEdge { source, target } => {
                    self.graph.remove_edge(source, target);
                }
                StreamElement::Relabel { id, label } => {
                    let _ = self.graph.set_label(id, label);
                }
            }
        }
    }
}

impl Drop for DurableState {
    fn drop(&mut self) {
        if let Some(sub) = self.sub.take() {
            self.epochs.unsubscribe(sub);
        }
        self.sink.shutdown();
    }
}

/// The ingest-stage histograms an observed session resolves once at build
/// time, so the per-batch hot path is a handle deref, not a registry lookup.
struct IngestSpans {
    wal_append: Arc<Histogram>,
    partition: Arc<Histogram>,
    apply_delete: Arc<Histogram>,
}

impl IngestSpans {
    fn resolve(telemetry: &Telemetry) -> Self {
        Self {
            wal_append: telemetry.stage_histogram(stage::INGEST_WAL_APPEND),
            partition: telemetry.stage_histogram(stage::INGEST_PARTITION),
            apply_delete: telemetry.stage_histogram(stage::INGEST_APPLY_DELETE),
        }
    }
}

/// A live partitioning session: one partitioner consuming a graph stream,
/// ready to hand the result off for query serving.
pub struct Session {
    partitioner: Box<dyn Partitioner>,
    durable: Option<DurableState>,
    ingest_spans: Option<IngestSpans>,
    telemetry: Option<Arc<Telemetry>>,
    spec: PartitionerSpec,
    workload: Option<Workload>,
    chunk_size: usize,
    latency: LatencyModel,
    query_mode: QueryMode,
    match_limit: Option<usize>,
    plan_strategy: PlanStrategy,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("partitioner", &self.partitioner.name())
            .field("spec", &self.spec)
            .field("chunk_size", &self.chunk_size)
            .field("workload", &self.workload.is_some())
            .field("durable", &self.durable.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl Session {
    /// Start building a session around a declarative partitioner spec.
    pub fn builder(spec: PartitionerSpec) -> SessionBuilder {
        SessionBuilder {
            spec,
            workload: None,
            chunk_size: DEFAULT_BATCH_SIZE,
            latency: LatencyModel::default(),
            query_mode: QueryMode::default(),
            match_limit: None,
            plan_strategy: PlanStrategy::default(),
            durability: None,
            telemetry: None,
        }
    }

    /// The telemetry bundle observing this session, if any.
    pub fn telemetry_handle(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The spec the partitioner was built from.
    pub fn spec(&self) -> &PartitionerSpec {
        &self.spec
    }

    /// The partitioner's short, stable name.
    pub fn partitioner_name(&self) -> &'static str {
        self.partitioner.name()
    }

    /// Feed a single stream element. On a durable session the element is
    /// WAL-appended (and fsynced) as a one-element batch before the
    /// partitioner sees it.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment and WAL-append errors.
    pub fn ingest(&mut self, element: &StreamElement) -> SessionResult<()> {
        self.ingest_batch(std::slice::from_ref(element))
    }

    /// Feed a contiguous chunk of stream elements at once. On a durable
    /// session the batch is WAL-appended (and fsynced) **before** it reaches
    /// the partitioner — on `Ok`, the batch survives a crash.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment and WAL-append errors.
    pub fn ingest_batch(&mut self, batch: &[StreamElement]) -> SessionResult<()> {
        if let Some(durable) = self.durable.as_mut() {
            let span = SpanTimer::start(self.ingest_spans.as_ref().map(|s| &*s.wal_append));
            let appended = durable.wal.append(batch);
            drop(span);
            appended?;
        }
        let span = SpanTimer::start(self.ingest_spans.as_ref().map(|s| &*s.partition));
        let ingested = self.partitioner.ingest_batch(batch);
        drop(span);
        ingested?;
        if let Some(durable) = self.durable.as_mut() {
            // Batches carrying destructive elements charge the mirror
            // application to `ingest.apply_delete`; insert-only batches stay
            // off that series so its count is the number of mutating batches.
            let span = if batch.iter().any(|e| e.is_mutation()) {
                SpanTimer::start(self.ingest_spans.as_ref().map(|s| &*s.apply_delete))
            } else {
                SpanTimer::start(None)
            };
            durable.apply(batch);
            drop(span);
        }
        Ok(())
    }

    /// Feed a whole stream, chunked at the session's configured chunk size
    /// (each chunk is one WAL record on a durable session).
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment and WAL-append errors.
    pub fn ingest_stream(&mut self, stream: &GraphStream) -> SessionResult<()> {
        let chunk_size = self.chunk_size;
        for chunk in stream.elements().chunks(chunk_size) {
            self.ingest_batch(chunk)?;
        }
        Ok(())
    }

    /// Publish the current partitioning as a new serving epoch and hand it
    /// to the background checkpoint sink; returns the epoch sequence. The
    /// write happens off this thread — [`Session::sync_durability`] blocks
    /// until it is on disk.
    ///
    /// # Errors
    ///
    /// Fails on sessions built without [`SessionBuilder::with_durability`].
    pub fn checkpoint(&mut self) -> SessionResult<u64> {
        if self.durable.is_none() {
            return Err(SessionError::Durability(
                "checkpoint() needs a durable session: configure with_durability(root)".into(),
            ));
        }
        let snapshot = self.partitioner.snapshot();
        let durable = self.durable.as_mut().expect("checked above");
        let store = ShardedStore::from_parts(&durable.graph, &snapshot);
        durable.sink.set_wal_records(durable.wal.records());
        Ok(durable.epochs.publish(store))
    }

    /// Block until every published epoch has been checkpointed to disk, and
    /// return the highest epoch written. Surfaces background write errors.
    ///
    /// # Errors
    ///
    /// Fails on non-durable sessions, on checkpoint-write failures, and on
    /// timeout.
    pub fn sync_durability(&self, timeout: Duration) -> SessionResult<u64> {
        let durable = self.durable.as_ref().ok_or_else(|| {
            SessionError::Durability(
                "sync_durability() needs a durable session: configure with_durability(root)".into(),
            )
        })?;
        Ok(durable.sink.wait_idle(timeout)?)
    }

    /// Number of batches fsynced to the write-ahead log so far.
    pub fn wal_records(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.wal.records())
    }

    /// Finish a **durable** session and serve the graph it ingested — the
    /// durable layer mirrors every acknowledged batch, so no separate graph
    /// argument is needed (compare [`Session::serve`]).
    ///
    /// # Errors
    ///
    /// Fails on non-durable sessions; propagates flush errors.
    pub fn serve_ingested(self) -> SessionResult<Serving> {
        let graph =
            match self.durable.as_ref() {
                Some(durable) => durable.graph.clone(),
                None => return Err(SessionError::Durability(
                    "serve_ingested() needs a durable session: configure with_durability(root) \
                     or pass the graph to serve()"
                        .into(),
                )),
            };
        self.serve(graph)
    }

    /// A non-destructive copy of the partitioning built so far (buffered
    /// vertices are still awaiting placement and are not included).
    pub fn snapshot(&self) -> Partitioning {
        self.partitioner.snapshot()
    }

    /// Unified ingestion counters.
    pub fn stats(&self) -> PartitionerStats {
        self.partitioner.stats()
    }

    /// Flush buffered vertices and move the final partitioning out, spending
    /// the session's partitioner. Prefer [`Session::serve`] to continue into
    /// query serving.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors from the flush.
    pub fn into_partitioning(mut self) -> SessionResult<Partitioning> {
        Ok(self.partitioner.finish()?)
    }

    /// Finish partitioning and hand off to the serving layer: every workload
    /// query is compiled **once** into a plan against the graph's statistics
    /// (the compile-once step every engine below reuses), and the partitioned
    /// `graph` goes into a [`PartitionedStore`] with a [`QueryExecutor`]
    /// configured from the session.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors from the final flush.
    pub fn serve(mut self, graph: LabelledGraph) -> SessionResult<Serving> {
        let partitioning = self.partitioner.finish()?;
        let plans = self.workload.as_ref().map(|workload| {
            let stats = GraphStatistics::from_graph(&graph);
            let planner = QueryPlanner::new(self.plan_strategy);
            Arc::new(PlanCache::compile(&planner, workload, &stats))
        });
        let store = PartitionedStore::new(graph, partitioning);
        let mut executor = QueryExecutor::new(self.latency).with_mode(self.query_mode);
        if let Some(limit) = self.match_limit {
            executor = executor.with_match_limit(limit);
        }
        if let Some(plans) = &plans {
            executor = executor.with_plan_cache(Arc::clone(plans));
        }
        Ok(Serving {
            store,
            executor,
            workload: self.workload,
            plans,
            telemetry: self.telemetry,
        })
    }

    /// Finish partitioning and run an open-loop capacity measurement in one
    /// call: `serve(graph)` → [`Serving::sharded`]`(workers)` →
    /// [`ShardedServing::capacity`]. The returned [`CapacityRun`] carries the
    /// per-step offered/achieved table and the detected saturation knee.
    ///
    /// # Errors
    ///
    /// Propagates partitioner assignment errors from the final flush, and
    /// fails when the session has no workload (there is nothing to offer).
    pub fn capacity(
        self,
        graph: LabelledGraph,
        workers: usize,
        config: &LoadConfig,
    ) -> SessionResult<CapacityRun> {
        self.serve(graph)?.sharded(workers).capacity(config)
    }

    /// Bring a crashed (or cleanly stopped) durable session back: load the
    /// newest valid checkpoint under the builder's durability root —
    /// bit-verified against its manifest — truncate the WAL's torn tail,
    /// and replay the **full** acknowledged batch history through a fresh
    /// partitioner built from the same configuration. Partitioners are
    /// deterministic, so the replay reproduces the exact pre-crash state,
    /// streaming window included; serving resumes pinned at the
    /// checkpoint's original `epoch_seq`.
    ///
    /// # Errors
    ///
    /// Fails when the builder has no durability root, when on-disk state is
    /// corrupt beyond the WAL's torn tail, when the checkpoint was written
    /// by a different partitioner spec, or when replay hits an assignment
    /// error.
    pub fn recover(builder: SessionBuilder) -> SessionResult<Recovered> {
        let root = builder.durability.clone().ok_or_else(|| {
            SessionError::Durability(
                "recover() needs a durability root: configure with_durability(root)".into(),
            )
        })?;
        std::fs::create_dir_all(&root).map_err(|e| {
            SessionError::Store(StoreError::Io {
                path: root.clone(),
                source: e.to_string(),
            })
        })?;
        let state = loom_store::recover(&root)?;
        if let Some(t) = &builder.telemetry {
            if state.report.wal_truncated_bytes > 0 {
                t.flight().record(FlightKind::WalTruncated {
                    bytes: state.report.wal_truncated_bytes,
                });
            }
        }
        let mut partitioner = builder.make_partitioner()?;
        if let Some(checkpoint) = &state.checkpoint {
            if checkpoint.meta.spec != partitioner.name() {
                return Err(SessionError::Durability(format!(
                    "checkpoint at {} was written by partitioner `{}`, but this session \
                     is configured for `{}`",
                    root.display(),
                    checkpoint.meta.spec,
                    partitioner.name()
                )));
            }
            if checkpoint.meta.shards != builder.spec.k() {
                return Err(SessionError::Durability(format!(
                    "checkpoint at {} has {} shards, but this session is configured \
                     for k = {}",
                    root.display(),
                    checkpoint.meta.shards,
                    builder.spec.k()
                )));
            }
        }

        // Replay the full history: the WAL covers every acknowledged batch
        // since the root was created, and batched ingestion is deterministic,
        // so the fresh partitioner lands in the exact pre-crash state.
        let mut graph = LabelledGraph::new();
        for batch in &state.batches {
            partitioner.ingest_batch(batch)?;
            for element in batch {
                match *element {
                    StreamElement::AddVertex { id, label } => {
                        graph.insert_vertex(id, label);
                    }
                    StreamElement::AddEdge { source, target } => {
                        let _ = graph.add_edge_idempotent(source, target);
                    }
                    StreamElement::RemoveVertex { id } => {
                        graph.remove_vertex(id);
                    }
                    StreamElement::RemoveEdge { source, target } => {
                        graph.remove_edge(source, target);
                    }
                    StreamElement::Relabel { id, label } => {
                        let _ = graph.set_label(id, label);
                    }
                }
            }
        }

        let report = state.report.clone();
        let (pinned_graph, pinned_partitioning, pinned_store) = match state.checkpoint {
            Some(checkpoint) => (checkpoint.graph, checkpoint.partitioning, checkpoint.store),
            None => {
                let partitioning = partitioner.snapshot();
                let store = ShardedStore::from_parts(&graph, &partitioning);
                (graph.clone(), partitioning, store)
            }
        };
        let durable = DurableState::attach(
            &root,
            state.wal,
            graph,
            pinned_store,
            report.epoch_seq,
            partitioner.name(),
            builder.telemetry.as_ref(),
        )?;
        let store = durable.epochs.load();
        let session = Session {
            partitioner,
            durable: Some(durable),
            ingest_spans: builder.telemetry.as_deref().map(IngestSpans::resolve),
            telemetry: builder.telemetry,
            spec: builder.spec,
            workload: builder.workload,
            chunk_size: builder.chunk_size,
            latency: builder.latency,
            query_mode: builder.query_mode,
            match_limit: builder.match_limit,
            plan_strategy: builder.plan_strategy,
        };
        Ok(Recovered {
            session,
            graph: pinned_graph,
            partitioning: pinned_partitioning,
            store,
            report,
        })
    }
}

/// A durable session brought back by [`Session::recover`]: the live
/// [`Session`] (ready to keep ingesting against the reopened WAL) plus the
/// recovered checkpoint state, pinned at its pre-crash epoch, ready to
/// serve.
#[derive(Debug)]
pub struct Recovered {
    session: Session,
    graph: LabelledGraph,
    partitioning: Partitioning,
    store: Arc<ShardedStore>,
    report: RecoveryReport,
}

impl Recovered {
    /// Epoch sequence serving resumes at (0 when no checkpoint existed).
    pub fn epoch_seq(&self) -> u64 {
        self.report.epoch_seq
    }

    /// What recovery found on disk.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The recovered sharded store, bit-identical to the checkpointed one
    /// and stamped with its original epoch.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The checkpointed graph (the WAL prefix the checkpoint had folded in).
    pub fn graph(&self) -> &LabelledGraph {
        &self.graph
    }

    /// The checkpointed vertex→partition assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The live session: keep ingesting (WAL-backed), checkpoint again, or
    /// finish into serving.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Give up the recovered snapshot and keep only the live session.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Sequential serving over the recovered checkpoint state, configured
    /// exactly like the original session (same latency model, query mode,
    /// match limit, plan strategy — plans recompiled from the recovered
    /// graph's statistics, which recovery restored bit-identically).
    pub fn serving(&self) -> Serving {
        let plans = self.session.workload.as_ref().map(|workload| {
            let stats = GraphStatistics::from_graph(&self.graph);
            let planner = QueryPlanner::new(self.session.plan_strategy);
            Arc::new(PlanCache::compile(&planner, workload, &stats))
        });
        let store = PartitionedStore::new(self.graph.clone(), self.partitioning.clone());
        let mut executor =
            QueryExecutor::new(self.session.latency).with_mode(self.session.query_mode);
        if let Some(limit) = self.session.match_limit {
            executor = executor.with_match_limit(limit);
        }
        if let Some(plans) = &plans {
            executor = executor.with_plan_cache(Arc::clone(plans));
        }
        Serving {
            store,
            executor,
            workload: self.session.workload.clone(),
            plans,
            telemetry: self.session.telemetry.clone(),
        }
    }

    /// Concurrent serving over the recovered store with `workers` worker
    /// shards — the store keeps its pre-crash `epoch_seq`, so per-shard
    /// metrics are directly diffable against the pre-crash run.
    pub fn sharded(&self, workers: usize) -> ShardedServing {
        let serving = self.serving();
        let config = ServeConfig::new(workers)
            .with_mode(serving.executor.mode())
            .with_latency(serving.executor.latency_model())
            .with_match_limit(serving.executor.match_limit());
        let mut engine = ServeEngine::new(config);
        if let Some(plans) = &serving.plans {
            engine = engine.with_plan_cache(Arc::clone(plans));
        }
        if let Some(telemetry) = &serving.telemetry {
            engine = engine.with_telemetry(Arc::clone(telemetry));
        }
        ShardedServing {
            store: Arc::clone(&self.store),
            engine,
            workload: self.session.workload.clone(),
        }
    }
}

/// The serving half of a session: a partitioned store plus an instrumented
/// query executor, sharing the session's compiled plan cache.
#[derive(Debug, Clone)]
pub struct Serving {
    store: PartitionedStore,
    executor: QueryExecutor,
    workload: Option<Workload>,
    plans: Option<Arc<PlanCache>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl Serving {
    /// The partitioned store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// The final partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        self.store.partitioning()
    }

    /// The query executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }

    /// The compiled plan cache every engine spawned from this handle shares
    /// (`None` when the session has no workload to compile).
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }

    /// The session's workload, if one was configured.
    pub fn workload(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// The telemetry bundle inherited from the session, if any. Every engine
    /// spawned from this handle ([`Serving::sharded`], [`Serving::adaptive`])
    /// reports into it.
    pub fn telemetry_handle(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Execute `samples` queries drawn from an explicit workload. Queries
    /// matching the session workload (by id *and* structure) reuse its
    /// compiled plans; structurally foreign queries — even under colliding
    /// ids — are planned on the spot with the legacy heuristic.
    pub fn execute(&self, workload: &Workload, samples: usize, seed: u64) -> ExecutionMetrics {
        self.executor
            .execute_workload(&self.store, workload, samples, seed)
    }

    /// Freeze the store into a [`ShardedStore`] and stand up the concurrent
    /// serving engine with `workers` worker shards. The engine inherits the
    /// session's query mode, latency model, match limit **and compiled plan
    /// cache**, so its aggregate metrics are directly comparable to (in
    /// fact, identical to) the sequential [`Serving::run`] path for the
    /// same request.
    pub fn sharded(&self, workers: usize) -> ShardedServing {
        let config = ServeConfig::new(workers)
            .with_mode(self.executor.mode())
            .with_latency(self.executor.latency_model())
            .with_match_limit(self.executor.match_limit());
        let mut engine = ServeEngine::new(config);
        if let Some(plans) = &self.plans {
            engine = engine.with_plan_cache(Arc::clone(plans));
        }
        if let Some(telemetry) = &self.telemetry {
            engine = engine.with_telemetry(Arc::clone(telemetry));
        }
        ShardedServing {
            store: Arc::new(ShardedStore::from_store(&self.store)),
            engine,
            workload: self.workload.clone(),
        }
    }

    /// Stand up **adaptive** serving with `workers` worker shards: the
    /// `loom-adapt` loop tracks the observed query mix against the session's
    /// mined workload, and on drift incrementally migrates the placement —
    /// rebuilding only the affected shards and publishing the result as a new
    /// epoch, while in-flight queries keep their pinned snapshot. The engine
    /// inherits the session's query mode, latency model and match limit like
    /// [`Serving::sharded`].
    ///
    /// # Errors
    ///
    /// Fails when the session was built without a workload — drift is
    /// measured against the mined mix, so adaptive serving requires one.
    pub fn adaptive(&self, workers: usize, config: AdaptConfig) -> SessionResult<AdaptiveServing> {
        let Some(workload) = &self.workload else {
            return Err(SessionError::MissingWorkload("adaptive serving"));
        };
        let serve = ServeConfig::new(workers)
            .with_mode(self.executor.mode())
            .with_latency(self.executor.latency_model())
            .with_match_limit(self.executor.match_limit());
        let mut adaptive = AdaptiveServing::new(
            self.store.graph().clone(),
            self.store.partitioning().clone(),
            workload.clone(),
            serve,
            config,
        );
        if let Some(plans) = &self.plans {
            adaptive = adaptive.with_plan_cache(Arc::clone(plans));
        }
        if let Some(telemetry) = &self.telemetry {
            adaptive = adaptive.with_telemetry(Arc::clone(telemetry));
        }
        Ok(adaptive)
    }
}

/// The sequential face of the unified engine API: requests run on the
/// calling thread through the session's [`QueryExecutor`], its
/// [`PartitionedStore`] and the shared compiled plan cache. The
/// [`RequestContext`]'s deadline and cancellation token are observed by
/// every scheduled execution.
///
/// Sessions without a workload return an empty response for workload
/// requests (there is nothing to sample).
impl QueryEngine for Serving {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        match &self.workload {
            Some(workload) => {
                run_sequential_ctx(&self.executor, &self.store, workload, request, ctx)
            }
            None => QueryResponse::from_engine(
                ExecutionMetrics::default(),
                Vec::new(),
                request.collect_matches,
            ),
        }
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }
}

/// The concurrent serving half of a session: an immutable sharded snapshot
/// plus the `loom-serve` engine, created by [`Serving::sharded`].
#[derive(Debug, Clone)]
pub struct ShardedServing {
    store: Arc<ShardedStore>,
    engine: ServeEngine,
    workload: Option<Workload>,
}

impl ShardedServing {
    /// The pinned sharded snapshot.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The serving engine.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Serve `samples` queries drawn from an explicit workload. Queries
    /// matching the session workload (by id *and* structure) reuse its
    /// compiled plans; structurally foreign queries — even under colliding
    /// ids — are planned on the spot with the legacy heuristic.
    pub fn serve(&self, workload: &Workload, samples: usize, seed: u64) -> ServeReport {
        self.engine
            .serve_batch(&self.store, workload, samples, seed)
    }

    /// Execute a unified [`QueryRequest`] and return both the per-shard
    /// [`ServeReport`] and the request's [`QueryResponse`]. Sessions without
    /// a workload serve an empty report.
    pub fn serve_request(&self, request: QueryRequest) -> (ServeReport, QueryResponse) {
        self.serve_request_ctx(request, &RequestContext::unbounded())
    }

    /// Like [`ShardedServing::serve_request`], under an explicit
    /// [`RequestContext`]: the context's deadline (tightened by the
    /// request's own) bounds admission and execution, and firing its cancel
    /// token cooperatively unwinds every in-flight worker.
    pub fn serve_request_ctx(
        &self,
        request: QueryRequest,
        ctx: &RequestContext,
    ) -> (ServeReport, QueryResponse) {
        match &self.workload {
            Some(workload) => self
                .engine
                .run_request_ctx(&self.store, workload, request, ctx),
            None => (
                ServeReport::default(),
                QueryResponse::from_engine(
                    ExecutionMetrics::default(),
                    Vec::new(),
                    request.collect_matches,
                ),
            ),
        }
    }

    /// Drive this serving stack **open-loop** through `loom-load`: pace the
    /// config's seeded arrival schedule against a fresh engine cloned from
    /// this one (same worker count, mode, latency model, match limit, plan
    /// cache and telemetry), never blocking on backpressure, and return the
    /// per-step capacity table with its detected saturation knee.
    ///
    /// When the config carries a [`LoadConfig::service_hold`] scale, the
    /// measurement engine emulates service time by holding each worker for
    /// the query's modelled latency × scale — the closed-loop engine behind
    /// [`ShardedServing::serve_request`] is left untouched, so its
    /// sequential-parity guarantees are unaffected.
    ///
    /// # Errors
    ///
    /// Fails when the session was built without a workload — the arrival
    /// schedule needs queries to offer.
    pub fn capacity(&self, config: &LoadConfig) -> SessionResult<CapacityRun> {
        let Some(workload) = &self.workload else {
            return Err(SessionError::MissingWorkload("capacity measurement"));
        };
        let mut serve = *self.engine.config();
        if let Some(scale) = config.service_hold {
            serve = serve.with_service_hold(scale);
        }
        let mut engine = ServeEngine::new(serve);
        if let Some(plans) = self.engine.plan_cache() {
            engine = engine.with_plan_cache(Arc::clone(plans));
        }
        if let Some(telemetry) = self.engine.telemetry() {
            engine = engine.with_telemetry(Arc::clone(telemetry));
        }
        Ok(run_capacity(&engine, &self.store, workload, config))
    }
}

/// The concurrent face of the unified engine API: requests are routed and
/// executed across the worker shards from the same compiled plans as the
/// sequential path, so for any request `run` returns **identical** metrics
/// (and cursor contents) to [`Serving::run`] over the same session.
impl QueryEngine for ShardedServing {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        self.serve_request_ctx(request, ctx).1
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.engine.plan_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::ordering::StreamOrder;
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_partition::ldg::LdgConfig;
    use loom_partition::spec::LoomConfig;

    #[test]
    fn full_pipeline_runs_through_the_facade() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec)
            .workload(workload)
            .chunk_size(3)
            .build()
            .unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        session.ingest_stream(&stream).unwrap();
        assert_eq!(session.partitioner_name(), "loom");
        assert_eq!(session.stats().vertices_ingested, graph.vertex_count());
        let serving = session.serve(graph.clone()).unwrap();
        assert_eq!(
            serving.partitioning().assigned_count(),
            graph.vertex_count()
        );
        // Plans were compiled once per workload query at serve() time.
        let cache = serving
            .plan_cache()
            .expect("workload session compiles plans");
        assert_eq!(cache.len(), 3);
        let response = serving.run(QueryRequest::workload(200).with_seed(7));
        assert_eq!(response.metrics.queries_executed, 200);
        assert!(response.metrics.inter_partition_probability() <= 1.0);
        // One resolution per distinct sampled query — observably reused.
        assert!(cache.hits() >= 1 && cache.hits() <= cache.len());
    }

    #[test]
    fn baselines_run_without_a_workload() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        session.ingest_stream(&stream).unwrap();
        let partitioning = session.into_partitioning().unwrap();
        assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    }

    #[test]
    fn loom_spec_without_workload_is_rejected_at_build() {
        let spec = PartitionerSpec::Loom(LoomConfig::new(2, 8));
        let err = Session::builder(spec).build().expect_err("must fail");
        assert!(err.to_string().contains("workload"));
    }

    #[test]
    fn serving_without_workload_serves_empty_responses() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        assert!(serving.plan_cache().is_none(), "no workload, no plans");
        // The unified API serves an empty response instead of failing.
        let response = serving.run(QueryRequest::workload(10));
        assert_eq!(response.metrics.queries_executed, 0);
        // An explicit workload still works.
        let metrics = serving.execute(&paper_example_workload(), 10, 1);
        assert_eq!(metrics.queries_executed, 10);
    }

    #[test]
    fn unified_api_agrees_across_engines_and_reports() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let request = QueryRequest::workload(60).with_seed(9);
        let sharded = serving.sharded(2);
        // The per-shard report's aggregate is the response's metrics.
        let (report, response) = sharded.serve_request(request);
        assert_eq!(report.aggregate, response.metrics);
        assert!(report.shards.iter().all(|s| s.rejected == 0));
        // Sequential and sharded answers agree request-for-request, and an
        // unbounded context reproduces `run` exactly.
        assert_eq!(serving.run(request).metrics, sharded.run(request).metrics);
        assert_eq!(
            serving
                .run_ctx(request, &RequestContext::unbounded())
                .metrics,
            sharded.run(request).metrics
        );
    }

    #[test]
    fn deadline_bounded_request_flags_the_response() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let expired = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let request = QueryRequest::workload(25)
            .with_seed(3)
            .with_deadline(expired);
        let response = serving.run(request);
        assert_eq!(response.metrics.queries_executed, 25);
        assert_eq!(response.metrics.total_traversals, 0);
        assert!(response.metrics.deadline_exceeded);
        // The sharded engine reports the same short-circuit.
        let sharded = serving.sharded(2);
        let sharded_response = sharded.run(request);
        assert_eq!(sharded_response.metrics.queries_executed, 25);
        assert_eq!(sharded_response.metrics.total_traversals, 0);
        assert!(sharded_response.metrics.deadline_exceeded);
    }

    #[test]
    fn adaptive_serving_stands_up_through_the_facade() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        let workload = paper_example_workload();
        let mut adaptive = serving.adaptive(2, AdaptConfig::default()).unwrap();
        let (report, outcome) = adaptive.serve(&workload, 50, 5).unwrap();
        assert_eq!(report.queries, 50);
        // Matching traffic: no adaptation fires.
        assert!(outcome.is_none());
        assert_eq!(adaptive.current_epoch(), 1);
    }

    #[test]
    fn adaptive_serving_without_workload_is_rejected() {
        let graph = paper_example_graph();
        let spec = PartitionerSpec::Ldg(LdgConfig::new(2, graph.vertex_count()));
        let mut session = Session::builder(spec).build().unwrap();
        session
            .ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))
            .unwrap();
        let serving = session.serve(graph).unwrap();
        assert!(serving.adaptive(2, AdaptConfig::default()).is_err());
    }

    #[test]
    fn snapshot_mid_stream_is_partial_but_consistent() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let spec =
            PartitionerSpec::Loom(LoomConfig::new(2, graph.vertex_count()).with_window_size(4));
        let mut session = Session::builder(spec).workload(workload).build().unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let half = stream.len() / 2;
        session.ingest_batch(&stream.elements()[..half]).unwrap();
        let snap = session.snapshot();
        assert!(snap.assigned_count() <= graph.vertex_count());
        // Continue after the snapshot: the session is undisturbed.
        session.ingest_batch(&stream.elements()[half..]).unwrap();
        let partitioning = session.into_partitioning().unwrap();
        assert_eq!(partitioning.assigned_count(), graph.vertex_count());
    }
}
