//! # loom — workload-aware streaming graph partitioning
//!
//! Umbrella crate re-exporting the full LOOM stack (Firth & Missier,
//! *Workload-aware Streaming Graph Partitioning*, GraphQ@EDBT 2016):
//!
//! * [`loom_graph`] — labelled graphs, generators, graph streams, orderings;
//! * [`loom_motif`] — pattern queries, sub-graph isomorphism, signatures,
//!   the TPSTry++ and motif mining;
//! * [`loom_partition`] — Hash / LDG / Fennel / offline multilevel
//!   partitioners and quality metrics;
//! * [`loom_core`] — the LOOM workload-aware streaming partitioner itself;
//! * [`loom_sim`] — the distributed query-execution simulator and the
//!   experiment runner.
//!
//! The [`prelude`] pulls in the commonly used types from every layer; the
//! `examples/` directory shows end-to-end usage.

#![warn(missing_docs)]

pub use loom_core;
pub use loom_graph;
pub use loom_motif;
pub use loom_partition;
pub use loom_sim;

/// One-stop prelude for examples, tests and downstream experiments.
pub mod prelude {
    pub use loom_core::prelude::*;
    pub use loom_graph::prelude::*;
    pub use loom_motif::prelude::*;
    pub use loom_sim::prelude::*;
}
