//! # loom — workload-aware streaming graph partitioning
//!
//! Umbrella crate re-exporting the full LOOM stack (Firth & Missier,
//! *Workload-aware Streaming Graph Partitioning*, GraphQ@EDBT 2016):
//!
//! * [`loom_graph`] — labelled graphs, generators, graph streams, orderings;
//! * [`loom_motif`] — pattern queries, sub-graph isomorphism, signatures,
//!   the TPSTry++ and motif mining;
//! * [`loom_partition`] — Hash / LDG / Fennel / offline multilevel
//!   partitioners, the [`Partitioner`](loom_partition::traits::Partitioner)
//!   contract, the declarative
//!   [`PartitionerSpec`](loom_partition::spec::PartitionerSpec) registry and
//!   quality metrics;
//! * [`loom_core`] — the LOOM workload-aware streaming partitioner itself,
//!   with its fluent [`LoomBuilder`](loom_core::LoomBuilder) and the
//!   workload-aware registry extension;
//! * [`loom_sim`] — the distributed query-execution simulator, the shared
//!   instrumented pattern matcher and the experiment runner;
//! * [`loom_serve`] — the concurrent sharded serving engine: partition-major
//!   CSR shards with boundary halos, a home-shard query router, message-passing
//!   shard workers behind the wire-shaped
//!   [`ShardTransport`](loom_serve::transport::ShardTransport) channel, and
//!   ingest-while-serve epoch snapshots;
//! * [`loom_adapt`] — the adaptation loop: drift detection over the observed
//!   query mix, bounded incremental migration planning, and epoch-published
//!   shard rebuilds that never block reads;
//! * [`loom_store`] — the durability subsystem: CRC-framed write-ahead
//!   logging of every ingested batch, background per-shard checkpoints with
//!   a manifest-written-last atomicity rule, and restart-and-serve recovery
//!   ([`SessionBuilder::with_durability`](session::SessionBuilder::with_durability)
//!   / [`Session::recover`](session::Session::recover));
//! * [`loom_load`] — the open-loop capacity harness: seeded Poisson /
//!   constant-interval arrival schedules that never block on backpressure,
//!   `initial_rps → increment_rps → max_rps` ramp sweeps over the serving
//!   engine, per-step offered-vs-achieved tables with wall-clock sojourn
//!   quantiles, and saturation-knee detection
//!   ([`Session::capacity`](session::Session::capacity) /
//!   [`ShardedServing::capacity`](session::ShardedServing::capacity));
//! * [`loom_obs`] — the telemetry subsystem: a lock-free metric registry
//!   (counters, gauges, mergeable log-linear histograms with re-sort-free
//!   quantiles), zero-alloc scoped spans charging stage wall-clock, a
//!   flight recorder of structured events latched into dumps on deadline or
//!   admission failures, and Prometheus / JSON-lines exporters — attached
//!   per session via [`SessionBuilder::telemetry`](session::SessionBuilder::telemetry).
//!
//! ## Quickstart: the `Session` façade
//!
//! [`session::Session`] is the one entry point tying the pipeline together —
//! mine the workload, build any partitioner from a declarative spec, ingest
//! the stream in batches, then compile the workload's query plans **once**
//! and serve [`QueryRequest`](loom_sim::engine::QueryRequest)s against the
//! partitioned graph through the unified
//! [`QueryEngine`](loom_sim::engine::QueryEngine) API:
//!
//! ```
//! use loom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = paper_example_graph();
//! let workload = paper_example_workload();
//!
//! let spec = PartitionerSpec::Loom(
//!     LoomConfig::new(2, graph.vertex_count()).with_window_size(4),
//! );
//! let mut session = Session::builder(spec).workload(workload).build()?;
//!
//! let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
//! session.ingest_stream(&stream)?;
//!
//! let serving = session.serve(graph)?;
//! let response = serving.run(QueryRequest::workload(500).with_seed(42));
//! println!(
//!     "inter-partition traversal probability: {:.3}",
//!     response.metrics.inter_partition_probability()
//! );
//!
//! // Concrete matches stream out of a pull-based cursor.
//! let first = serving.workload().expect("has workload").queries()[0].id();
//! let matches = serving.run(QueryRequest::query(first).collect_matches(true));
//! for embedding in matches.into_cursor().take(3) {
//!     println!("match: {:?}", embedding.iter().collect::<Vec<_>>());
//! }
//!
//! // Requests can carry a deadline; expired searches unwind cooperatively
//! // and flag the partial result instead of running to completion.
//! let bounded = serving.run(
//!     QueryRequest::workload(500)
//!         .with_seed(42)
//!         .with_timeout(std::time::Duration::from_millis(50)),
//! );
//! assert!(bounded.metrics.queries_executed == 500);
//! # Ok(())
//! # }
//! ```
//!
//! The [`prelude`] pulls in the commonly used types from every layer; the
//! `examples/` directory shows end-to-end usage.

#![warn(missing_docs)]

pub mod session;

pub use loom_adapt;
pub use loom_core;
pub use loom_graph;
pub use loom_load;
pub use loom_motif;
pub use loom_obs;
pub use loom_partition;
pub use loom_serve;
pub use loom_sim;
pub use loom_store;

pub use session::{Recovered, Serving, Session, SessionBuilder, SessionError, ShardedServing};

/// One-stop prelude for examples, tests and downstream experiments.
pub mod prelude {
    pub use crate::session::{
        Recovered, Serving, Session, SessionBuilder, SessionError, ShardedServing,
    };
    pub use loom_adapt::prelude::*;
    pub use loom_core::prelude::*;
    pub use loom_graph::prelude::*;
    pub use loom_load::prelude::*;
    pub use loom_motif::prelude::*;
    pub use loom_obs::{stage, FlightKind, SpanTimer, Telemetry, TelemetrySnapshot};
    pub use loom_serve::prelude::*;
    pub use loom_sim::prelude::*;
}
