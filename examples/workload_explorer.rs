//! Workload explorer: inspect what the TPSTry++ captures from a workload.
//!
//! This example corresponds to the paper's Figure 2: it mines a query
//! workload into a TPSTry++, prints every motif node with its support and
//! p-value, and then sweeps the frequency threshold `T` to show how the set
//! of "frequent" motifs (the ones LOOM will try to keep intact) shrinks as
//! `T` grows.
//!
//! Run with:
//!
//! ```text
//! cargo run --example workload_explorer
//! ```

use loom::prelude::*;
use loom_core::FrequentMotifIndex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slightly richer workload than Figure 1: the three paper queries plus
    // a generated batch sharing the same cores.
    let mut queries: Vec<(PatternQuery, f64)> = paper_example_workload()
        .iter()
        .map(|(q, f)| (q.clone(), f))
        .collect();
    let generated = WorkloadGenerator {
        query_count: 12,
        label_count: 4,
        core_count: 2,
        core_length: 3,
        max_extension: 1,
        zipf_exponent: 1.2,
        seed: 31,
    }
    .generate()?;
    for (i, (q, f)) in generated.iter().enumerate() {
        // Re-number to avoid id collisions with the paper queries.
        let renumbered = PatternQuery::new(QueryId::new(100 + i as u32), q.graph().clone())?;
        queries.push((renumbered, f));
    }
    let workload = Workload::new(queries)?;
    println!("workload: {} queries", workload.queries().len());

    // Mine the TPSTry++.
    let tpstry = MotifMiner::default().mine(&workload)?;
    let interner = LabelInterner::with_alphabet(workload.label_alphabet_size() as usize);
    println!("TPSTry++: {} motif nodes\n", tpstry.node_count());

    // Print the nodes, largest p-value first.
    let mut ids: Vec<_> = tpstry.nodes().map(|n| n.id()).collect();
    ids.sort_by(|&a, &b| {
        tpstry
            .p_value(b)
            .partial_cmp(&tpstry.p_value(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!(
        "{:<6} {:>5} {:>5} {:>8}   motif",
        "node", "|V|", "|E|", "p-value"
    );
    for id in ids.iter().take(25) {
        let node = tpstry.node(*id);
        let labels: Vec<&str> = node
            .graph()
            .vertices_sorted()
            .iter()
            .map(|&v| {
                interner
                    .name(node.graph().label(v).expect("labelled"))
                    .unwrap_or("?")
            })
            .collect();
        println!(
            "{:<6} {:>5} {:>5} {:>8.3}   {}",
            id.to_string(),
            node.vertex_count(),
            node.edge_count(),
            tpstry.p_value(*id),
            labels.join("-"),
        );
    }
    if tpstry.node_count() > 25 {
        println!("... ({} more nodes)", tpstry.node_count() - 25);
    }

    // Threshold sweep: how many motifs does LOOM track at each T?
    println!("\nthreshold sweep (motifs with at least one edge):");
    println!(
        "{:>5}  {:>14}  {:>18}",
        "T", "frequent nodes", "largest motif (|V|)"
    );
    for threshold in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let index = FrequentMotifIndex::new(&tpstry, threshold);
        println!(
            "{threshold:>5.1}  {:>14}  {:>18}",
            index.motif_count(),
            index.max_motif_vertices(),
        );
    }
    Ok(())
}
