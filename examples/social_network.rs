//! Social-network scenario: a skewed friendship/interaction graph with a
//! generated query workload, partitioned by every partitioner in the
//! workspace and compared on both structural and workload-aware metrics.
//!
//! The graph is a Barabási–Albert preferential-attachment graph (heavy-tailed
//! degree distribution, like real social networks); the workload is produced
//! by [`WorkloadGenerator`] so that its queries share common label paths
//! ("find the friends-of-friends who liked the same page" style traversals)
//! with Zipf-skewed frequencies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use loom::loom_sim::report::comparison_table;
use loom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Data graph: 10k-vertex preferential attachment network ───────
    let graph = barabasi_albert(
        GeneratorConfig {
            vertices: 10_000,
            label_count: 4,
            seed: 2024,
        },
        3,
    )?;
    println!("social graph: {}", graph.summary());

    // ── 2. Workload: 30 queries sharing a handful of core traversals ────
    let workload = WorkloadGenerator {
        query_count: 30,
        label_count: 4,
        core_count: 3,
        core_length: 3,
        max_extension: 2,
        zipf_exponent: 1.0,
        seed: 7,
    }
    .generate()?;
    println!(
        "workload: {} queries, largest has {} vertices",
        workload.queries().len(),
        workload.max_query_size()
    );

    // ── 3. Run every partitioner over the same stochastic stream ────────
    //
    // Each streaming partitioner is built from its declarative spec through
    // the workload registry and driven batch-wise as a `Box<dyn Partitioner>`
    // (chunk_size elements at a time).
    let runner = ExperimentRunner::new(ExperimentConfig {
        k: 8,
        window_size: 256,
        motif_threshold: 0.3,
        query_samples: 150,
        chunk_size: 1024,
        ..ExperimentConfig::new(8)
    });
    let order = StreamOrder::Stochastic {
        seed: 99,
        jump_probability: 0.05,
    };
    let results = runner.run_many(&PartitionerKind::standard_set(), &graph, &order, &workload)?;

    let table = comparison_table("Social network, k = 8, stochastic stream", &results);
    println!("\n{}", table.render());

    // ── 4. Highlight the workload-aware result ───────────────────────────
    let by_name = |name: &str| {
        results
            .iter()
            .find(|r| r.partitioner == name)
            .ok_or_else(|| format!("missing result row for {name}"))
    };
    let ldg = by_name("ldg")?;
    let loom = by_name("loom")?;
    println!(
        "LOOM answers {:.1}% of queries without leaving a partition (LDG: {:.1}%), \
         with a mean latency of {:.0} µs vs {:.0} µs.",
        loom.local_only_fraction * 100.0,
        ldg.local_only_fraction * 100.0,
        loom.mean_latency_us,
        ldg.mean_latency_us,
    );
    Ok(())
}
