//! Adaptive serving under workload drift: the `loom-adapt` loop end to end.
//!
//! A graph carries two disjoint planted motif families. The partitioning is
//! mined for phase A (`abc`-path traffic); the live load then flips to phase
//! B (`def`-path traffic). Watch the remote-hop fraction degrade on the
//! static placement, the drift tracker notice, and one bounded incremental
//! migration — published as a fresh epoch, without blocking reads — claw the
//! locality back.
//!
//! ```sh
//! cargo run --release --example adaptive_serving
//! ```

use loom::prelude::*;
use loom::session::Session;

const K: u32 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = DriftScenario::small(17);
    let (graph, instances) = scenario.build_graph()?;
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 1 });
    let phase_a = scenario.phase_a();
    let phase_b = scenario.phase_b();
    println!(
        "graph: {} vertices, {} edges, {} planted motif instances",
        graph.vertex_count(),
        graph.edge_count(),
        instances.len()
    );

    // Mine phase A and build the placement the serving layer starts from.
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(K, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut session = Session::builder(spec)
        .workload(phase_a.clone())
        .query_mode(QueryMode::Rooted { seed_count: 3 })
        .build()?;
    session.ingest_stream(&stream)?;
    let serving = session.serve(graph)?;
    let mut adaptive = serving.adaptive(K as usize, AdaptConfig::default())?;

    println!("\n-- phase A (mined-for traffic) --");
    for seed in 0..2u64 {
        let (report, outcome) = adaptive.serve(&phase_a, 300, seed)?;
        println!(
            "batch {seed}: remote hops {:.1}%, p99 {:.0} µs, drift {:.3}, epoch {} {}",
            report.remote_hop_fraction() * 100.0,
            report.p99_latency_us,
            adaptive.tracker().drift(),
            adaptive.current_epoch(),
            if outcome.is_some() { "(adapted)" } else { "" },
        );
    }

    println!("\n-- phase change: def-path traffic takes over --");
    for seed in 10..14u64 {
        let (report, outcome) = adaptive.serve(&phase_b, 300, seed)?;
        let note = match &outcome {
            Some(o) => format!(
                "(drift {:.3} -> adapted: {} moves, {} shards rebuilt, epoch {})",
                o.drift_before, o.moved, o.affected_shards, o.epoch
            ),
            None => String::new(),
        };
        println!(
            "batch {seed}: remote hops {:.1}%, p99 {:.0} µs, epoch {} {note}",
            report.remote_hop_fraction() * 100.0,
            report.p99_latency_us,
            adaptive.current_epoch(),
        );
    }

    println!(
        "\nadaptations: {}, vertices migrated: {}, final imbalance {:.3}",
        adaptive.adaptations(),
        adaptive.total_moved(),
        adaptive.partitioning().imbalance(),
    );
    Ok(())
}
