//! Quickstart: the paper's Figure 1 worked example, end to end.
//!
//! Builds the 8-vertex example graph `G` and the three-query workload `Q`
//! from Figure 1 of the paper, mines the TPSTry++ (Figure 2), partitions the
//! graph stream with both plain LDG and LOOM through the top-level
//! [`Session`] façade, and compares how the two partitionings behave when
//! the workload is executed.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. The data graph and workload of Figure 1 ──────────────────────
    let graph = paper_example_graph();
    let workload = paper_example_workload();
    let interner = LabelInterner::with_alphabet(4);
    println!("example graph: {}", graph.summary());
    println!("workload: {} queries", workload.queries().len());

    // ── 2. Mine the workload summary (TPSTry++, Figure 2) ───────────────
    let miner = MotifMiner::default();
    let tpstry = miner.mine(&workload)?;
    println!("\nTPSTry++ nodes ({} total):", tpstry.node_count());
    let mut nodes: Vec<_> = tpstry.nodes().collect();
    nodes.sort_by(|a, b| {
        a.vertex_count()
            .cmp(&b.vertex_count())
            .then(a.edge_count().cmp(&b.edge_count()))
    });
    for node in nodes {
        let labels: Vec<String> = node
            .graph()
            .vertices_sorted()
            .iter()
            .map(|&v| {
                let label = node.graph().label(v).expect("motif vertex labelled");
                interner.name(label).unwrap_or("?").to_owned()
            })
            .collect();
        println!(
            "  {:>3}: {} vertices [{}], {} edges, p-value {:.2}",
            node.id().to_string(),
            node.vertex_count(),
            labels.join(" "),
            node.edge_count(),
            tpstry.p_value(node.id()),
        );
    }

    // ── 3. Stream the graph through two Session-built partitioners ──────
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    let k = 2;

    let specs = [
        (
            "LDG",
            PartitionerSpec::Ldg(LdgConfig::new(k, graph.vertex_count())),
        ),
        (
            "LOOM",
            PartitionerSpec::Loom(
                LoomConfig::new(k, graph.vertex_count())
                    .with_window_size(4)
                    .with_motif_threshold(0.3),
            ),
        ),
    ];

    println!("\nworkload execution (600 sampled queries):");
    for (name, spec) in specs {
        let mut session = Session::builder(spec).workload(workload.clone()).build()?;
        session.ingest_stream(&stream)?;
        let serving = session.serve(graph.clone())?;

        let partitioning = serving.partitioning();
        println!("\n{name} partitioning:");
        for p in partitioning.partitions() {
            let members: Vec<String> = partitioning
                .members(p)
                .iter()
                .map(|v| v.to_string())
                .collect();
            println!("  {p}: {}", members.join(", "));
        }
        let quality = partitioning.quality(&graph);
        println!("  {quality}");

        // ── 4. Execute the workload against the partitioned store through
        //      the unified engine API (plans were compiled once at serve).
        let metrics = serving
            .run(QueryRequest::workload(600).with_seed(7))
            .metrics;
        println!(
            "  {name:5} inter-partition traversal probability = {:.3}, \
             local-only queries = {:.1}%, mean latency = {:.1} µs",
            metrics.inter_partition_probability(),
            metrics.local_only_fraction() * 100.0,
            metrics.mean_latency_us(),
        );
    }
    Ok(())
}
