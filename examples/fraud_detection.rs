//! Fraud-detection scenario: keep fraud-ring motifs inside partitions.
//!
//! Pattern matching for fraud detection is one of the motivating applications
//! in the paper's introduction. The typical "fraud ring" is a small motif —
//! here a cycle `account → card → account → merchant` plus a short
//! account-card-merchant path — repeated many times inside a much larger
//! transaction graph. The anti-fraud workload keeps re-running those pattern
//! queries, so a partitioner that scatters ring members across machines pays
//! a network round-trip on almost every check.
//!
//! This example plants fraud rings into a background transaction graph,
//! partitions the stream with LDG and with LOOM through the [`Session`]
//! façade, and reports (a) how many planted rings stay wholly inside one
//! partition and (b) the traversal locality of the fraud workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use loom::prelude::*;
use loom_graph::generators::motif_planted::MotifPlantConfig;

/// Labels used in the transaction graph.
const ACCOUNT: Label = Label::new(0);
const CARD: Label = Label::new(1);
const MERCHANT: Label = Label::new(2);
const DEVICE: Label = Label::new(3);

fn fraud_ring() -> LabelledGraph {
    // account - card - account - merchant cycle (4-cycle).
    cycle_graph(4, &[ACCOUNT, CARD, ACCOUNT, MERCHANT])
}

fn card_sharing_path() -> LabelledGraph {
    // account - card - merchant path.
    path_graph(3, &[ACCOUNT, CARD, MERCHANT])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Transaction graph with planted fraud rings ────────────────────
    let (graph, planted) = motif_planted_graph(
        &MotifPlantConfig {
            background_vertices: 6_000,
            background_edges: 15_000,
            instances_per_motif: 250,
            attachment_edges: 2,
            label_count: 4,
            seed: 11,
        },
        &[fraud_ring(), card_sharing_path()],
    )?;
    println!("transaction graph: {}", graph.summary());
    println!("planted fraud structures: {}", planted.len());

    // ── 2. The anti-fraud workload ───────────────────────────────────────
    let ring_query = PatternQuery::new(QueryId::new(0), fraud_ring())?;
    let path_query = PatternQuery::new(QueryId::new(1), card_sharing_path())?;
    let device_query = PatternQuery::branch(QueryId::new(2), DEVICE, &[ACCOUNT, ACCOUNT])?;
    // Ring checks dominate the workload; device-sharing checks are rare.
    let workload = Workload::new(vec![
        (ring_query, 5.0),
        (path_query, 3.0),
        (device_query, 1.0),
    ])?;

    // ── 3. Partition the stream with LDG and LOOM via Session ────────────
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 5 });
    let k = 8;
    let latency = LatencyModel {
        local_hop_us: 1.0,
        remote_hop_us: 250.0,
    };

    let specs = [
        (
            "LDG",
            PartitionerSpec::Ldg(LdgConfig::new(k, graph.vertex_count())),
        ),
        (
            "LOOM",
            PartitionerSpec::Loom(
                LoomConfig::new(k, graph.vertex_count())
                    .with_window_size(512)
                    .with_motif_threshold(0.3),
            ),
        ),
    ];

    // ── 4.–5. Intact fraud structures + workload execution per spec ──────
    let intact = |partitioning: &Partitioning| {
        planted
            .iter()
            .filter(|inst| {
                let home = partitioning.partition_of(inst.vertices[0]);
                inst.vertices
                    .iter()
                    .all(|v| partitioning.partition_of(*v) == home)
            })
            .count()
    };

    println!("\nanti-fraud workload execution (100 sampled queries):");
    for (name, spec) in specs {
        let mut session = Session::builder(spec)
            .workload(workload.clone())
            .latency(latency)
            .match_limit(2_000)
            .build()?;
        session.ingest_stream(&stream)?;
        println!(
            "  {name:5} ingestion: {} (chunked batches)",
            session.stats()
        );
        let serving = session.serve(graph.clone())?;
        let partitioning = serving.partitioning();
        let quality = partitioning.quality(&graph);
        let kept = intact(partitioning);
        let metrics = serving
            .run(QueryRequest::workload(100).with_seed(3))
            .metrics;
        println!(
            "  {name:5} fraud structures intact: {kept}/{} | cut={:.3} imbalance={:.3} | \
             ipt probability={:.3} local-only={:.1}% mean latency={:.0} µs",
            planted.len(),
            quality.cut_ratio,
            quality.imbalance,
            metrics.inter_partition_probability(),
            metrics.local_only_fraction() * 100.0,
            metrics.mean_latency_us(),
        );
    }
    Ok(())
}
