//! Capacity: find the serving stack's saturation knee with `loom-load`.
//!
//! Drives a session's sharded serving engine **open-loop**: arrival times
//! are a pure function of `(process, rate, seed)` computed before the run,
//! injection never blocks on backpressure (a full shard queue rejects the
//! arrival on the spot), and late or rejected requests burn the step's
//! error budget instead of being retried — so the measured knee is a
//! property of the engine, not of a self-throttling driver.
//!
//! The walk-through:
//!
//! 1. **calibrate** — probe the mean *modelled* query latency and pick a
//!    service-hold scale, so each worker occupies its shard for the
//!    latency model's opinion of the query (scaled to a capacity small
//!    enough to saturate in under a second);
//! 2. **ramp** — seeded Poisson arrivals sweep `initial_rps →
//!    increment_rps → max_rps` through [`Session::capacity`], measuring
//!    per-step offered vs achieved RPS, wall-clock sojourn quantiles,
//!    queue-wait p99, rejects, and in-flight depth;
//! 3. **knee** — [`SaturationDetector`] flags the first step whose goodput
//!    flattens below the offered rate; the knee is the previous step's
//!    rate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity
//! ```

use loom::prelude::*;
use std::time::Duration;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = loom_graph::generators::barabasi_albert(
        loom_graph::generators::GeneratorConfig {
            vertices: 500,
            label_count: 4,
            seed: 7,
        },
        3,
    )?;
    let workload = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)])?,
            3.0,
        ),
        (PatternQuery::path(QueryId::new(1), &[l(0), l(1)])?, 1.0),
    ])?;

    let spec = PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(64));
    // The match cap bounds the service-time tail (hub queries otherwise
    // dwarf the median), and the telemetry bundle feeds the per-step
    // queue-wait column.
    let mut session = Session::builder(spec)
        .workload(workload)
        .query_mode(QueryMode::Rooted { seed_count: 3 })
        .match_limit(64)
        .telemetry(Telemetry::new())
        .build()?;
    session.ingest_stream(&GraphStream::from_graph(&graph, &StreamOrder::Bfs))?;
    let serving = session.serve(graph)?;

    // ── 1. Calibrate the service hold ───────────────────────────────────
    // Real service time on a 500-vertex graph is microseconds, which would
    // put the knee in channel-overhead territory. Emulate service time
    // instead: hold each worker for the query's modelled latency × a scale
    // chosen so two workers saturate near 300 rps.
    let sharded = serving.sharded(2);
    let probe_request = QueryRequest::workload(50)
        .with_seed(42)
        .with_traversal_budget(512);
    let (probe, _) = sharded.serve_request(probe_request);
    let mean_us = probe.aggregate.estimated_latency_us / 50.0;
    let hold_scale = 1e6 / (150.0 * mean_us);
    println!("calibration: {mean_us:.0} us/query modelled -> hold scale {hold_scale:.2}");

    // ── 2. Ramp the offered rate open-loop ──────────────────────────────
    let ramp = RampSchedule::new(100.0, 300.0, Duration::from_millis(150), 1_000.0);
    let config = LoadConfig::new(ramp)
        .with_process(ArrivalProcess::Poisson)
        .with_seed(42)
        .with_request_timeout(Duration::from_millis(80))
        .with_traversal_budget(512)
        .with_service_hold(hold_scale);
    let run = sharded.capacity(&config)?;

    // ── 3. Read the knee off the step table ─────────────────────────────
    let report = CapacityReport {
        process: config.process.name().to_string(),
        seed: config.seed,
        ramp,
        fast: false,
        cells: vec![CapacityCell {
            spec: CellSpec::new("loom", 2, "cost_ranked"),
            run,
        }],
    };
    print!("{}", report.text_report());

    let run = &report.cells[0].run;
    let budget = run.report.error_budget;
    println!(
        "\nerror budget: {} offered, {} rejected, {} deadline-expired ({:.1}% dropped)",
        budget.requests,
        budget.rejected,
        budget.deadline_expired,
        budget.dropped_fraction() * 100.0,
    );
    if run.knee.found() {
        println!(
            "saturation knee: {:.0} rps ({})",
            run.knee.knee_rps,
            run.knee.reason.name()
        );
    } else {
        println!(
            "ramp never saturated — capacity is at least {:.0} rps",
            run.knee.knee_rps
        );
    }

    Ok(())
}
