//! Serving: the concurrent sharded engine, end to end.
//!
//! Partitions a Barabási–Albert "social network" stream with LOOM, freezes
//! the result into a [`ShardedStore`] (per-partition CSR slices with a
//! boundary halo), and serves a rooted query load three ways:
//!
//! 1. a **shard-count sweep** — the same load on 1/2/4/8 worker shards,
//!    showing the modelled aggregate QPS scale up as the makespan shrinks;
//! 2. a **partitioner comparison** — Hash vs LOOM under identical load:
//!    fewer remote hops ⇒ lower p99 and higher QPS at equal shard count;
//! 3. **ingest-while-serve** — the partitioner keeps consuming the stream
//!    and publishing epoch snapshots while queries execute concurrently.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use loom::prelude::*;
use loom_graph::generators::{barabasi_albert, GeneratorConfig};
use loom_partition::hash::HashConfig;

fn l(x: u32) -> Label {
    Label::new(x)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Graph, workload, LOOM partitioning via the Session façade ────
    let graph = barabasi_albert(
        GeneratorConfig {
            vertices: 3_000,
            label_count: 4,
            seed: 7,
        },
        3,
    )?;
    let workload = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)])?,
            4.0,
        ),
        (
            PatternQuery::cycle(QueryId::new(1), &[l(0), l(1), l(0), l(1)])?,
            2.0,
        ),
        (PatternQuery::path(QueryId::new(2), &[l(0), l(1)])?, 1.0),
    ])?;
    println!("graph: {}", graph.summary());

    let k = 8;
    let spec = PartitionerSpec::Loom(
        LoomConfig::new(k, graph.vertex_count())
            .with_window_size(128)
            .with_motif_threshold(0.3),
    );
    let mut session = Session::builder(spec)
        .workload(workload.clone())
        .query_mode(QueryMode::Rooted { seed_count: 4 })
        .build()?;
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream)?;
    let serving = session.serve(graph.clone())?;

    // ── 2. Shard-count sweep on the LOOM partitioning ───────────────────
    println!("\nshard-count sweep (LOOM, 600 rooted queries):");
    let mut baseline = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let sharded = serving.sharded(workers);
        // Full per-shard report through the unified request API; the
        // compiled plans are shared by the router and every worker.
        let (report, _) = sharded.serve_request(QueryRequest::workload(600).with_seed(42));
        if workers == 1 {
            baseline = report.aggregate_qps();
        }
        println!(
            "  {workers} shard(s): {:>9.0} qps (x{:.2}), p50 {:>7.1} µs, p99 {:>8.1} µs, \
             remote hops {:.1}%, max queue depth {}",
            report.aggregate_qps(),
            report.aggregate_qps() / baseline,
            report.p50_latency_us,
            report.p99_latency_us,
            report.remote_hop_fraction() * 100.0,
            report
                .shards
                .iter()
                .map(|s| s.max_queue_depth)
                .max()
                .unwrap_or(0),
        );
    }

    // ── 3. Hash vs LOOM at 4 shards, same load ──────────────────────────
    println!("\npartitioner comparison (4 shards, 600 rooted queries):");
    let hash_spec = PartitionerSpec::Hash(HashConfig::new(k, graph.vertex_count()));
    let mut hash_session = Session::builder(hash_spec)
        .workload(workload.clone())
        .query_mode(QueryMode::Rooted { seed_count: 4 })
        .build()?;
    hash_session.ingest_stream(&stream)?;
    let hash_serving = hash_session.serve(graph.clone())?;
    for (name, handle) in [("hash", &hash_serving), ("loom", &serving)] {
        let (report, _) = handle
            .sharded(4)
            .serve_request(QueryRequest::workload(600).with_seed(42));
        println!(
            "  {name:5}: {:>9.0} qps, p99 {:>8.1} µs, remote hops {:.1}%",
            report.aggregate_qps(),
            report.p99_latency_us,
            report.remote_hop_fraction() * 100.0,
        );
    }

    // ── 4. Ingest-while-serve: epoch-swapped snapshots ──────────────────
    println!("\ningest-while-serve (epoch swaps under live queries):");
    let tpstry = MotifMiner::default().mine(&workload)?;
    let registry = loom_core::workload_registry(&tpstry);
    let mut partitioner = registry.build(&PartitionerSpec::Loom(
        LoomConfig::new(k, graph.vertex_count()).with_window_size(128),
    ))?;
    let elements = stream.elements();
    let prefix = elements.len() / 5;
    let mut grown = GraphStream::from_elements(elements[..prefix].to_vec()).materialise();
    partitioner.ingest_batch(&elements[..prefix])?;
    let epochs = EpochStore::new(ShardedStore::from_parts(&grown, &partitioner.snapshot()));

    let engine = ServeEngine::new(
        ServeConfig::new(4)
            .with_mode(QueryMode::Rooted { seed_count: 4 })
            .with_queue_capacity(32),
    );
    let report = std::thread::scope(|scope| -> Result<ServeReport, loom_graph::GraphError> {
        let epochs_ref = &epochs;
        let ingest = scope.spawn(move || -> Result<(), Box<dyn std::error::Error + Send>> {
            for chunk in elements[prefix..].chunks(500) {
                partitioner
                    .ingest_batch(chunk)
                    .map_err(|e| Box::new(e) as Box<dyn std::error::Error + Send>)?;
                for element in chunk {
                    match *element {
                        StreamElement::AddVertex { id, label } => {
                            grown.insert_vertex(id, label);
                        }
                        StreamElement::AddEdge { source, target } => {
                            grown
                                .add_edge_idempotent(source, target)
                                .map_err(|e| Box::new(e) as Box<dyn std::error::Error + Send>)?;
                        }
                        // `from_graph` streams are insert-only.
                        _ => unreachable!("graph streams carry no mutations"),
                    }
                }
                epochs_ref.publish(ShardedStore::from_parts(&grown, &partitioner.snapshot()));
            }
            Ok(())
        });
        let report = engine.serve_epochs(&epochs, &workload, 800, 23);
        ingest.join().expect("ingest thread panicked").unwrap();
        Ok(report)
    })?;
    println!(
        "  {} queries across epochs {:?} ({} published), final graph |V|={}",
        report.aggregate.queries_executed,
        report.epochs_observed,
        epochs.current_epoch(),
        epochs.load().vertex_count(),
    );
    Ok(())
}
