//! Telemetry: observe a session end to end with `loom-obs`.
//!
//! Attaches a [`Telemetry`] bundle to a durable LOOM session and walks the
//! full observability surface:
//!
//! 1. **stage histograms** — ingest, serve, and store stages charge their
//!    wall clock into the shared registry via zero-alloc span guards;
//! 2. **interval diffs** — two snapshots around a serve burst, diffed with
//!    [`TelemetrySnapshot::since`] into per-second rates and interval
//!    quantiles (the shape a periodic scraper wants);
//! 3. **the flight recorder** — a serve burst under an already-expired
//!    deadline forces admission rejections, and the engine latches a
//!    [`FlightDump`] carrying the rejected request's full timeline;
//! 4. **exporters** — the Prometheus text exposition (self-checked with
//!    [`validate_prometheus`], exactly as the CI smoke step does) and the
//!    JSON-lines form.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use loom::prelude::*;
use loom_obs::validate_prometheus;
use std::time::{Duration, Instant};

fn l(x: u32) -> Label {
    Label::new(x)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. An observed session: one builder call wires every layer ──────
    let graph = loom_graph::generators::barabasi_albert(
        loom_graph::generators::GeneratorConfig {
            vertices: 1_500,
            label_count: 4,
            seed: 7,
        },
        3,
    )?;
    let workload = Workload::new(vec![
        (
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)])?,
            4.0,
        ),
        (PatternQuery::path(QueryId::new(1), &[l(0), l(1)])?, 1.0),
    ])?;

    let telemetry = Telemetry::new();
    let spec =
        PartitionerSpec::Loom(LoomConfig::new(4, graph.vertex_count()).with_window_size(128));
    let root = std::env::temp_dir().join(format!("loom-telemetry-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut session = Session::builder(spec)
        .workload(workload)
        .query_mode(QueryMode::Rooted { seed_count: 3 })
        .telemetry(telemetry.clone())
        .with_durability(&root)
        .build()?;
    let stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
    session.ingest_stream(&stream)?;
    let serving = session.serve(graph)?;
    let sharded = serving.sharded(4);

    // ── 2. Interval diff around a serve burst ───────────────────────────
    let before = telemetry.snapshot();
    let (report, _) = sharded.serve_request(QueryRequest::workload(400).with_seed(42));
    let delta = telemetry.snapshot().since(&before);
    println!(
        "serve burst: {} queries, {:.0} modelled qps, p99 {:.0} µs",
        report.aggregate.queries_executed,
        report.aggregate_qps(),
        report.p99_latency_us,
    );
    println!("\ninterval diff (scrape-to-scrape shape):\n{delta}");

    // ── 3. Flight recorder: an expired deadline latches a dump ──────────
    let (_, response) = sharded.serve_request(
        QueryRequest::workload(50)
            .with_seed(7)
            .with_deadline(Instant::now() - Duration::from_secs(1)),
    );
    drop(response);
    match telemetry.flight().last_dump() {
        Some(dump) => {
            println!(
                "flight dump latched: \"{}\" at {} µs, {} events retained \
                 ({} recorded in total); last five:",
                dump.reason,
                dump.at_us,
                dump.events.len(),
                telemetry.flight().recorded(),
            );
            for event in dump.events.iter().rev().take(5).rev() {
                println!("  {event}");
            }
        }
        None => println!("no flight dump latched (every request beat the deadline)"),
    }

    // ── 4. Exporters: Prometheus text + JSON lines ──────────────────────
    let snapshot = telemetry.snapshot();
    let prometheus = snapshot.prometheus();
    let series =
        validate_prometheus(&prometheus).map_err(|e| format!("invalid exposition: {e}"))?;
    println!(
        "prometheus exposition: {} series, all parseable:",
        series.len()
    );
    for name in series.iter().filter(|n| n.contains("serve")).take(6) {
        println!("  {name}");
    }
    let preview: String = prometheus
        .lines()
        .filter(|l| l.contains("serve_latency"))
        .take(5)
        .collect::<Vec<_>>()
        .join("\n");
    println!("\nserve.latency summary as scraped:\n{preview}");
    println!(
        "\njson-lines export: {} series objects",
        snapshot.json_lines().lines().count()
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
